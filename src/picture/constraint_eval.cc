#include "picture/constraint_eval.h"

#include "util/string_util.h"

namespace htl {

AttrValue EvalTerm(const AttrTerm& term, const SegmentMeta& meta, const EvalEnv& env) {
  switch (term.kind) {
    case AttrTerm::Kind::kLiteral:
      return term.literal;
    case AttrTerm::Kind::kVariable:
      return env.AttrOf(term.name);
    case AttrTerm::Kind::kSegmentAttr:
      return meta.Attribute(term.name);
    case AttrTerm::Kind::kAttrOfVar: {
      const ObjectId id = env.ObjectOf(term.object_var);
      if (id == kInvalidObjectId) return AttrValue();
      const ObjectAppearance* obj = meta.FindObject(id);
      if (obj == nullptr) return AttrValue();
      return obj->Attribute(term.name);
    }
    case AttrTerm::Kind::kName:
      // Unresolved name: the binder was not run; treat as segment attribute.
      return meta.Attribute(term.name);
  }
  return AttrValue();
}

bool Compare(const AttrValue& lhs, CompareOp op, const AttrValue& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      // Null-free inequality; incomparable kinds count as unequal.
      return !(lhs == rhs);
    case CompareOp::kLt:
      return lhs.LessThan(rhs);
    case CompareOp::kLe:
      return lhs.LessThan(rhs) || lhs == rhs;
    case CompareOp::kGt:
      return rhs.LessThan(lhs);
    case CompareOp::kGe:
      return rhs.LessThan(lhs) || lhs == rhs;
  }
  return false;
}

bool ConstraintSatisfied(const Constraint& c, const SegmentMeta& meta, const EvalEnv& env) {
  switch (c.kind) {
    case Constraint::Kind::kPresent: {
      const ObjectId id = env.ObjectOf(c.object_var);
      return id != kInvalidObjectId && meta.HasObject(id);
    }
    case Constraint::Kind::kCompare:
      return Compare(EvalTerm(c.lhs, meta, env), c.op, EvalTerm(c.rhs, meta, env));
    case Constraint::Kind::kPredicate: {
      PredicateFact fact;
      fact.name = c.pred_name;
      fact.args.reserve(c.pred_args.size());
      for (const std::string& a : c.pred_args) {
        const ObjectId id = env.ObjectOf(a);
        if (id == kInvalidObjectId) return false;
        fact.args.push_back(id);
      }
      return meta.HasFact(fact);
    }
  }
  return false;
}

Result<std::string> ComparisonAttrVar(const Constraint& c) {
  if (c.kind != Constraint::Kind::kCompare) return std::string();
  const bool lv = c.lhs.kind == AttrTerm::Kind::kVariable;
  const bool rv = c.rhs.kind == AttrTerm::Kind::kVariable;
  if (lv && rv) {
    return Status::Unimplemented(
        "comparisons between two attribute variables are outside the "
        "conjunctive classes (section 3.3 restricts to y OP value)");
  }
  if (lv) return c.lhs.name;
  if (rv) return c.rhs.name;
  return std::string();
}

Result<AttrVarRange> CompareToRange(const Constraint& c, const SegmentMeta& meta,
                                    const EvalEnv& env) {
  HTL_ASSIGN_OR_RETURN(std::string var, ComparisonAttrVar(c));
  if (var.empty()) {
    return Status::InvalidArgument(
        StrCat("constraint has no attribute variable: ", c.ToString()));
  }
  const bool var_on_left = c.lhs.kind == AttrTerm::Kind::kVariable;
  const AttrValue value = EvalTerm(var_on_left ? c.rhs : c.lhs, meta, env);
  AttrVarRange out;
  out.var = std::move(var);
  if (value.is_null()) {
    // The compared attribute is undefined here: unsatisfiable.
    out.range = ValueRange::Empty();
    return out;
  }
  // Normalize to: var OP' value.
  CompareOp op = c.op;
  if (!var_on_left) {
    switch (c.op) {
      case CompareOp::kLt:
        op = CompareOp::kGt;
        break;
      case CompareOp::kLe:
        op = CompareOp::kGe;
        break;
      case CompareOp::kGt:
        op = CompareOp::kLt;
        break;
      case CompareOp::kGe:
        op = CompareOp::kLe;
        break;
      default:
        break;  // = and != are symmetric.
    }
  }
  switch (op) {
    case CompareOp::kEq:
      out.range = ValueRange::Exactly(value);
      break;
    case CompareOp::kLt:
      out.range = ValueRange::LessThan(value);
      break;
    case CompareOp::kLe:
      out.range = ValueRange::AtMost(value);
      break;
    case CompareOp::kGt:
      out.range = ValueRange::GreaterThan(value);
      break;
    case CompareOp::kGe:
      out.range = ValueRange::AtLeast(value);
      break;
    case CompareOp::kNe:
      return Status::Unimplemented(
          "!= over attribute variables does not denote a single range "
          "(section 3.3 restricts attribute-variable predicates)");
  }
  return out;
}

}  // namespace htl
