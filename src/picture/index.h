#ifndef HTL_PICTURE_INDEX_H_
#define HTL_PICTURE_INDEX_H_

#include <map>
#include <string>
#include <vector>

#include "model/video.h"

namespace htl {

/// Inverted indices over one level of one video's meta-data — the "indices
/// on the meta-data" the paper's picture retrieval system [27, 25, 2]
/// employs. Built once per (video, level) and shared by all queries.
class LevelIndex {
 public:
  /// Scans all segments of `level` in `video`.
  LevelIndex(const VideoTree& video, int level);

  int level() const { return level_; }
  int64_t num_segments() const { return num_segments_; }

  /// Every object id appearing at this level, sorted.
  const std::vector<ObjectId>& all_objects() const { return all_objects_; }

  /// Sorted ids of segments where `id` appears (empty vector if never).
  const std::vector<SegmentId>& Posting(ObjectId id) const;

  /// Objects having attribute `attr` equal to `value` in at least one
  /// segment of this level (sorted). Drives candidate pruning for
  /// constraints like type(x) = 'airplane'.
  const std::vector<ObjectId>& ObjectsWithAttrValue(const std::string& attr,
                                                    const AttrValue& value) const;

  /// Objects appearing in argument position `pos` of a ground fact named
  /// `pred` somewhere at this level (sorted).
  const std::vector<ObjectId>& ObjectsInFactPosition(const std::string& pred,
                                                     size_t pos) const;

  /// Sorted ids of segments whose segment-level attribute `attr` equals
  /// `value` — serves browsing predicates like type = 'western'.
  const std::vector<SegmentId>& SegmentsWithAttrValue(const std::string& attr,
                                                      const AttrValue& value) const;

 private:
  static std::string ValueKey(const std::string& attr, const AttrValue& value);

  int level_;
  int64_t num_segments_;
  std::vector<ObjectId> all_objects_;
  std::map<ObjectId, std::vector<SegmentId>> postings_;
  std::map<std::string, std::vector<ObjectId>> objects_by_attr_value_;
  std::map<std::string, std::vector<ObjectId>> objects_by_fact_position_;
  std::map<std::string, std::vector<SegmentId>> segments_by_attr_value_;
  std::vector<ObjectId> empty_objects_;
  std::vector<SegmentId> empty_segments_;
};

}  // namespace htl

#endif  // HTL_PICTURE_INDEX_H_
