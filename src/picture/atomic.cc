#include "picture/atomic.h"

#include <algorithm>

#include "util/string_util.h"

namespace htl {

namespace {

void AddUnique(std::vector<std::string>& out, const std::string& v) {
  if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
}

Status Collect(const Formula& f, AtomicFormula* out) {
  switch (f.kind) {
    case FormulaKind::kConstraint:
      out->constraints.push_back(f.constraint);
      return Status::OK();
    case FormulaKind::kAnd:
      HTL_RETURN_IF_ERROR(Collect(*f.left, out));
      return Collect(*f.right, out);
    case FormulaKind::kExists:
      for (const std::string& v : f.vars) AddUnique(out->exists_vars, v);
      return Collect(*f.left, out);
    default:
      return Status::InvalidArgument(
          StrCat("subformula is not atomic: ", f.ToString()));
  }
}

}  // namespace

double AtomicFormula::MaxWeight() const {
  double w = 0;
  for (const Constraint& c : constraints) w += c.weight;
  return w;
}

std::vector<std::string> AtomicFormula::AllObjectVars() const {
  std::vector<std::string> vars;
  for (const Constraint& c : constraints) {
    switch (c.kind) {
      case Constraint::Kind::kPresent:
        AddUnique(vars, c.object_var);
        break;
      case Constraint::Kind::kPredicate:
        for (const std::string& a : c.pred_args) AddUnique(vars, a);
        break;
      case Constraint::Kind::kCompare:
        for (const AttrTerm* t : {&c.lhs, &c.rhs}) {
          if (t->kind == AttrTerm::Kind::kAttrOfVar) AddUnique(vars, t->object_var);
        }
        break;
    }
  }
  return vars;
}

std::vector<std::string> AtomicFormula::FreeObjectVars() const {
  std::vector<std::string> out;
  for (const std::string& v : AllObjectVars()) {
    if (std::find(exists_vars.begin(), exists_vars.end(), v) == exists_vars.end()) {
      out.push_back(v);
    }
  }
  return out;
}

std::vector<std::string> AtomicFormula::FreeAttrVars() const {
  std::vector<std::string> out;
  for (const Constraint& c : constraints) {
    if (c.kind != Constraint::Kind::kCompare) continue;
    for (const AttrTerm* t : {&c.lhs, &c.rhs}) {
      if (t->kind == AttrTerm::Kind::kVariable) AddUnique(out, t->name);
    }
  }
  return out;
}

std::string AtomicFormula::ToString() const {
  std::string body;
  for (size_t i = 0; i < constraints.size(); ++i) {
    if (i > 0) body += " and ";
    body += constraints[i].ToString();
  }
  if (exists_vars.empty()) return body;
  return StrCat("exists ", StrJoin(exists_vars, ", "), " (", body, ")");
}

Result<AtomicFormula> ExtractAtomic(const Formula& f) {
  AtomicFormula out;
  HTL_RETURN_IF_ERROR(Collect(f, &out));
  return out;
}

bool IsAtomicShape(const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kConstraint:
      return true;
    case FormulaKind::kAnd:
      return IsAtomicShape(*f.left) && IsAtomicShape(*f.right);
    case FormulaKind::kExists:
      return IsAtomicShape(*f.left);
    default:
      return false;
  }
}

}  // namespace htl
