#ifndef HTL_PICTURE_PICTURE_SYSTEM_H_
#define HTL_PICTURE_PICTURE_SYSTEM_H_

#include <map>
#include <memory>

#include "model/video.h"
#include "picture/atomic.h"
#include "picture/index.h"
#include "sim/sim_table.h"
#include "sim/value_table.h"
#include "util/result.h"

namespace htl {

/// Tuning knobs for the picture-retrieval substrate.
struct PictureOptions {
  /// Upper bound on the number of candidate variable bindings enumerated
  /// for one atomic query (the product over variables of candidate-set
  /// sizes). Queries exceeding it fail with FailedPrecondition rather than
  /// running away; realistic annotated videos stay far below it.
  int64_t max_bindings = 1'000'000;
};

/// The similarity-based picture retrieval substrate — a re-implementation of
/// the published interface of the system the paper builds on ([27, 25, 2]):
/// given an atomic (non-temporal) formula and a level of the video
/// hierarchy, produce the similarity table of that formula over the level's
/// segments, scoring each segment by weighted partial match (the sum of the
/// weights of satisfied constraints; segments scoring zero are omitted).
///
/// Semantics notes (documented in DESIGN.md):
///   * Bindings range over objects appearing anywhere at the queried level;
///     rows whose list would be empty are dropped. A wildcard row (object
///     column = kAnyObject) carries the score achievable regardless of that
///     variable's binding, preserving partial matches under joins.
///   * Constraints mentioning an attribute variable are "hard": a row's
///     range column records exactly the variable values for which they all
///     hold, and the constraint weights are included inside that range; for
///     values outside every row's range the atomic formula scores zero.
class PictureSystem {
 public:
  /// `video` must outlive the system.
  explicit PictureSystem(const VideoTree* video, PictureOptions options = {});

  const VideoTree& video() const { return *video_; }

  /// Lazily built per-level index.
  const LevelIndex& Index(int level);

  /// Similarity table of `atomic` over the segments of `level`. Columns:
  /// the atomic formula's free object variables and attribute variables.
  Result<SimilarityTable> Query(int level, const AtomicFormula& atomic);

  /// As Query for an atomic formula with no free variables (all object
  /// variables locally quantified, no attribute variables): a plain
  /// similarity list.
  Result<SimilarityList> QueryClosed(int level, const AtomicFormula& atomic);

  /// The value table of attribute function `q` (kAttrOfVar or kSegmentAttr)
  /// over the segments of `level` — input to the freeze join (section 3.3).
  Result<ValueTable> Values(int level, const AttrTerm& q);

 private:
  const VideoTree* video_;
  PictureOptions options_;
  std::map<int, std::unique_ptr<LevelIndex>> indices_;
};

}  // namespace htl

#endif  // HTL_PICTURE_PICTURE_SYSTEM_H_
