#ifndef HTL_PICTURE_SPATIAL_H_
#define HTL_PICTURE_SPATIAL_H_

#include <optional>
#include <string>
#include <vector>

#include "model/segment.h"
#include "util/result.h"

namespace htl {

/// Spatial reasoning for the picture-retrieval substrate. The system the
/// paper builds on ([27] and "Reasoning about spatial relationships in
/// picture retrieval systems" [26]) indexes spatial relationships between
/// the objects of a picture; here they are *derived* from per-object
/// bounding boxes rather than hand-annotated, and materialized as ordinary
/// ground facts so that HTL predicates (left_of(x, y), overlaps(x, y), ...)
/// query them through the normal fact index.

/// Axis-aligned bounding box in image coordinates (origin top-left,
/// y growing downward, as in the scanned-frame convention).
struct BoundingBox {
  double x = 0;  // Left edge.
  double y = 0;  // Top edge.
  double width = 0;
  double height = 0;

  double right() const { return x + width; }
  double bottom() const { return y + height; }
  double area() const { return width * height; }

  bool Valid() const { return width > 0 && height > 0; }

  friend bool operator==(const BoundingBox& a, const BoundingBox& b) {
    return a.x == b.x && a.y == b.y && a.width == b.width && a.height == b.height;
  }

  std::string ToString() const;
};

/// The binary spatial relations derived between two boxes. The directional
/// four use *strict* interval separation (a wholly to the left of b, etc.);
/// kOverlaps is symmetric interior intersection; kInside is proper
/// containment of a in b.
enum class SpatialRelation {
  kLeftOf,
  kRightOf,
  kAbove,
  kBelow,
  kOverlaps,
  kInside,
  kContains,
};

/// Canonical predicate name for a relation ("left_of", "overlaps", ...).
std::string_view SpatialRelationName(SpatialRelation r);

/// All names, in enum order (for generators and documentation).
const std::vector<std::string>& SpatialRelationNames();

/// True when boxes a and b stand in relation `r` (a r b).
bool HoldsBetween(const BoundingBox& a, const BoundingBox& b, SpatialRelation r);

/// Composition table for directional relations ([26]-style deduction):
/// given a R1 b and b R2 c, returns the relation guaranteed between a and c
/// when one is implied (only same-axis directional relations compose:
/// left_of ∘ left_of = left_of etc.).
std::optional<SpatialRelation> Compose(SpatialRelation r1, SpatialRelation r2);

/// Reads an object's bounding box from its conventional attributes
/// ("bbox_x", "bbox_y", "bbox_w", "bbox_h"); nullopt when absent/invalid.
std::optional<BoundingBox> BoxOf(const ObjectAppearance& object);

/// Writes the box onto an appearance as the conventional attributes.
void SetBox(ObjectAppearance* object, const BoundingBox& box);

/// Derives all pairwise spatial facts between objects of `meta` that carry
/// bounding boxes and records them as ground facts (left_of(a,b), ...).
/// Returns the number of facts added. Idempotent.
int DeriveSpatialFacts(SegmentMeta* meta);

}  // namespace htl

#endif  // HTL_PICTURE_SPATIAL_H_
