#include "picture/spatial.h"

#include "util/string_util.h"

namespace htl {

std::string BoundingBox::ToString() const {
  return StrCat("[", x, ",", y, " ", width, "x", height, "]");
}

std::string_view SpatialRelationName(SpatialRelation r) {
  switch (r) {
    case SpatialRelation::kLeftOf:
      return "left_of";
    case SpatialRelation::kRightOf:
      return "right_of";
    case SpatialRelation::kAbove:
      return "above";
    case SpatialRelation::kBelow:
      return "below";
    case SpatialRelation::kOverlaps:
      return "overlaps";
    case SpatialRelation::kInside:
      return "inside";
    case SpatialRelation::kContains:
      return "contains";
  }
  return "?";
}

const std::vector<std::string>& SpatialRelationNames() {
  static const std::vector<std::string>& names = *new std::vector<std::string>{
      "left_of", "right_of", "above", "below", "overlaps", "inside", "contains"};
  return names;
}

bool HoldsBetween(const BoundingBox& a, const BoundingBox& b, SpatialRelation r) {
  if (!a.Valid() || !b.Valid()) return false;
  switch (r) {
    case SpatialRelation::kLeftOf:
      return a.right() < b.x;
    case SpatialRelation::kRightOf:
      return b.right() < a.x;
    case SpatialRelation::kAbove:
      return a.bottom() < b.y;
    case SpatialRelation::kBelow:
      return b.bottom() < a.y;
    case SpatialRelation::kOverlaps:
      return a.x < b.right() && b.x < a.right() && a.y < b.bottom() && b.y < a.bottom();
    case SpatialRelation::kInside:
      return a.x >= b.x && a.right() <= b.right() && a.y >= b.y &&
             a.bottom() <= b.bottom() && !(a == b);
    case SpatialRelation::kContains:
      return HoldsBetween(b, a, SpatialRelation::kInside);
  }
  return false;
}

std::optional<SpatialRelation> Compose(SpatialRelation r1, SpatialRelation r2) {
  // Directional relations on the same axis compose transitively; inside
  // composes with itself; inside preserves the outer object's directional
  // relations (if a inside b and b left_of c, then a left_of c).
  if (r1 == r2) {
    switch (r1) {
      case SpatialRelation::kLeftOf:
      case SpatialRelation::kRightOf:
      case SpatialRelation::kAbove:
      case SpatialRelation::kBelow:
      case SpatialRelation::kInside:
      case SpatialRelation::kContains:
        return r1;
      default:
        return std::nullopt;
    }
  }
  if (r1 == SpatialRelation::kInside) {
    switch (r2) {
      case SpatialRelation::kLeftOf:
      case SpatialRelation::kRightOf:
      case SpatialRelation::kAbove:
      case SpatialRelation::kBelow:
        return r2;  // a ⊆ b and b strictly beside c ⇒ a strictly beside c.
      default:
        return std::nullopt;
    }
  }
  return std::nullopt;
}

std::optional<BoundingBox> BoxOf(const ObjectAppearance& object) {
  const AttrValue x = object.Attribute("bbox_x");
  const AttrValue y = object.Attribute("bbox_y");
  const AttrValue w = object.Attribute("bbox_w");
  const AttrValue h = object.Attribute("bbox_h");
  if (!x.is_numeric() || !y.is_numeric() || !w.is_numeric() || !h.is_numeric()) {
    return std::nullopt;
  }
  BoundingBox box{x.AsDouble(), y.AsDouble(), w.AsDouble(), h.AsDouble()};
  if (!box.Valid()) return std::nullopt;
  return box;
}

void SetBox(ObjectAppearance* object, const BoundingBox& box) {
  object->attributes["bbox_x"] = AttrValue(box.x);
  object->attributes["bbox_y"] = AttrValue(box.y);
  object->attributes["bbox_w"] = AttrValue(box.width);
  object->attributes["bbox_h"] = AttrValue(box.height);
}

int DeriveSpatialFacts(SegmentMeta* meta) {
  // Collect boxed objects first (AddFact mutates the fact list only).
  std::vector<std::pair<ObjectId, BoundingBox>> boxed;
  for (const ObjectAppearance& obj : meta->objects()) {
    if (std::optional<BoundingBox> box = BoxOf(obj); box.has_value()) {
      boxed.emplace_back(obj.id, *box);
    }
  }
  int added = 0;
  constexpr SpatialRelation kAll[] = {
      SpatialRelation::kLeftOf,   SpatialRelation::kRightOf,
      SpatialRelation::kAbove,    SpatialRelation::kBelow,
      SpatialRelation::kOverlaps, SpatialRelation::kInside,
      SpatialRelation::kContains,
  };
  for (const auto& [ida, boxa] : boxed) {
    for (const auto& [idb, boxb] : boxed) {
      if (ida == idb) continue;
      for (SpatialRelation r : kAll) {
        if (!HoldsBetween(boxa, boxb, r)) continue;
        PredicateFact fact{std::string(SpatialRelationName(r)), {ida, idb}};
        if (!meta->HasFact(fact)) {
          meta->AddFact(std::move(fact));
          ++added;
        }
      }
    }
  }
  return added;
}

}  // namespace htl
