#include "picture/index.h"

#include <algorithm>

#include "util/string_util.h"

namespace htl {

namespace {

template <typename T>
void SortUnique(std::vector<T>& v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
}

}  // namespace

std::string LevelIndex::ValueKey(const std::string& attr, const AttrValue& value) {
  return StrCat(attr, "\x1f", value.ToString());
}

LevelIndex::LevelIndex(const VideoTree& video, int level)
    : level_(level), num_segments_(video.NumSegments(level)) {
  for (SegmentId id = 1; id <= num_segments_; ++id) {
    const SegmentMeta& meta = video.Meta(level, id);
    for (const auto& [attr, value] : meta.attributes()) {
      segments_by_attr_value_[ValueKey(attr, value)].push_back(id);
    }
    for (const ObjectAppearance& obj : meta.objects()) {
      all_objects_.push_back(obj.id);
      postings_[obj.id].push_back(id);
      for (const auto& [attr, value] : obj.attributes) {
        objects_by_attr_value_[ValueKey(attr, value)].push_back(obj.id);
      }
    }
    for (const PredicateFact& fact : meta.facts()) {
      for (size_t pos = 0; pos < fact.args.size(); ++pos) {
        objects_by_fact_position_[StrCat(fact.name, "\x1f", pos)].push_back(
            fact.args[pos]);
      }
    }
  }
  SortUnique(all_objects_);
  for (auto& [k, v] : postings_) SortUnique(v);
  for (auto& [k, v] : objects_by_attr_value_) SortUnique(v);
  for (auto& [k, v] : objects_by_fact_position_) SortUnique(v);
  for (auto& [k, v] : segments_by_attr_value_) SortUnique(v);
}

const std::vector<SegmentId>& LevelIndex::Posting(ObjectId id) const {
  auto it = postings_.find(id);
  return it == postings_.end() ? empty_segments_ : it->second;
}

const std::vector<ObjectId>& LevelIndex::ObjectsWithAttrValue(
    const std::string& attr, const AttrValue& value) const {
  auto it = objects_by_attr_value_.find(ValueKey(attr, value));
  return it == objects_by_attr_value_.end() ? empty_objects_ : it->second;
}

const std::vector<ObjectId>& LevelIndex::ObjectsInFactPosition(const std::string& pred,
                                                               size_t pos) const {
  auto it = objects_by_fact_position_.find(StrCat(pred, "\x1f", pos));
  return it == objects_by_fact_position_.end() ? empty_objects_ : it->second;
}

const std::vector<SegmentId>& LevelIndex::SegmentsWithAttrValue(
    const std::string& attr, const AttrValue& value) const {
  auto it = segments_by_attr_value_.find(ValueKey(attr, value));
  return it == segments_by_attr_value_.end() ? empty_segments_ : it->second;
}

}  // namespace htl
