#ifndef HTL_HTL_BINDER_H_
#define HTL_HTL_BINDER_H_

#include "htl/ast.h"
#include "util/status.h"

namespace htl {

/// Options for Bind.
struct BindOptions {
  /// Require every object variable to be bound by an existential quantifier
  /// (retrieval queries are closed formulas). When false, free object
  /// variables are permitted — useful for evaluating subformulas under an
  /// explicit evaluation, as the reference engine does.
  bool require_closed = true;
};

/// Resolves names and checks well-formedness, in place:
///   * bare identifiers in comparisons become attribute variables when an
///     enclosing freeze quantifier binds them, segment attributes otherwise;
///   * rebinding a variable (exists or freeze shadowing) is rejected;
///   * using an attribute variable as an object (predicate argument,
///     present(), attribute function argument) is rejected, and vice versa;
///   * with require_closed, unbound object variables are rejected.
/// Run this once on parser output before classification or evaluation.
Status Bind(Formula* formula, const BindOptions& options = {});

}  // namespace htl

#endif  // HTL_HTL_BINDER_H_
