#ifndef HTL_HTL_PARSER_H_
#define HTL_HTL_PARSER_H_

#include <string>

#include "htl/ast.h"
#include "util/result.h"

namespace htl {

/// Parses HTL concrete syntax into a Formula tree. Grammar (operators from
/// loosest to tightest: until, or, and, prefix unaries):
///
///   formula    := until_expr
///   until_expr := or_expr ('until' until_expr)?            # right-assoc
///   or_expr    := and_expr ('or' and_expr)*
///   and_expr   := unary ('and' unary)*
///   unary      := 'not' unary | 'next' unary | 'eventually' unary
///              | 'exists' IDENT (',' IDENT)* '(' formula ')'
///              | '[' IDENT '<-' term ']' unary
///              | LEVEL_OP '(' formula ')'
///              | primary
///   LEVEL_OP   := 'at-next-level' | 'at-level-' INT | 'at-' NAME '-level'
///   primary    := '(' formula ')' | 'true' | 'false'
///              | 'present' '(' IDENT ')' weight?
///              | predicate-or-comparison weight?
///   weight     := '@' NUMBER                               # extension
///   term       := literal | IDENT | IDENT '(' IDENT ')'    # attr fn of var
///
/// Examples from the paper:
///   (A)  M1(s) and next (M2(s) until M3(s))        -- with predicates
///   (B)  exists x, y (present(x) and name(x) = 'JohnWayne' and ...)
///   (C)  exists z (present(z) and type(z) = 'airplane'
///          and [h <- height(z)] eventually (present(z) and height(z) > h))
///
/// The result still contains unresolved kName terms; run the binder
/// (htl/binder.h) before evaluation.
Result<FormulaPtr> ParseFormula(std::string_view text);

}  // namespace htl

#endif  // HTL_HTL_PARSER_H_
