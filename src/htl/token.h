#ifndef HTL_HTL_TOKEN_H_
#define HTL_HTL_TOKEN_H_

#include <string>

#include "model/value.h"

namespace htl {

enum class TokenKind {
  kIdent,     // identifiers and keywords; '-' allowed between alphanumerics
              // so that at-next-level lexes as one token, as in the paper
  kInt,       // 42
  kFloat,     // 3.5
  kString,    // 'western'
  kLParen,    // (
  kRParen,    // )
  kLBracket,  // [
  kRBracket,  // ]
  kComma,     // ,
  kAt,        // @  (constraint weight annotation, an extension)
  kArrow,     // <-
  kEq,        // =
  kNe,        // !=
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kEnd,       // end of input
};

std::string_view TokenKindName(TokenKind kind);

/// One lexical token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // Identifier / string contents.
  AttrValue number;   // kInt / kFloat value.
  size_t offset = 0;  // Byte offset in the query text.

  std::string ToString() const;
};

}  // namespace htl

#endif  // HTL_HTL_TOKEN_H_
