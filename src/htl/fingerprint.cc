#include "htl/fingerprint.h"

#include <utility>

#include "util/string_util.h"

namespace htl {

std::string CanonicalFormulaKey(const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kConstraint:
      return f.constraint.ToString();  // Includes the weight ("@ w").
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      std::string a = CanonicalFormulaKey(*f.left);
      std::string b = CanonicalFormulaKey(*f.right);
      // Commutative: order the operands by their canonical form so
      // `a and b` and `b and a` share one key (see the header for why the
      // swap is bit-exact).
      if (b < a) std::swap(a, b);
      return StrCat("(", a, f.kind == FormulaKind::kAnd ? " and " : " or ", b, ")");
    }
    case FormulaKind::kNot:
      return StrCat("not (", CanonicalFormulaKey(*f.left), ")");
    case FormulaKind::kNext:
      return StrCat("next (", CanonicalFormulaKey(*f.left), ")");
    case FormulaKind::kEventually:
      return StrCat("eventually (", CanonicalFormulaKey(*f.left), ")");
    case FormulaKind::kUntil:
      return StrCat("(", CanonicalFormulaKey(*f.left), " until ",
                    CanonicalFormulaKey(*f.right), ")");
    case FormulaKind::kExists:
      return StrCat("exists ", StrJoin(f.vars, ","), " (",
                    CanonicalFormulaKey(*f.left), ")");
    case FormulaKind::kFreeze:
      return StrCat("[", f.freeze_var, " <- ", f.freeze_term.ToString(), "] (",
                    CanonicalFormulaKey(*f.left), ")");
    case FormulaKind::kLevel:
      return StrCat(f.level.ToString(), " (", CanonicalFormulaKey(*f.left), ")");
  }
  return f.ToString();  // Unreachable; keeps -Wswitch quiet without a default.
}

uint64_t FingerprintKey(std::string_view key) {
  // FNV-1a 64: offset basis / prime per the reference parameters.
  uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : key) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t FingerprintFormula(const Formula& f) {
  return FingerprintKey(CanonicalFormulaKey(f));
}

}  // namespace htl
