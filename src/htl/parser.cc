#include "htl/parser.h"

#include <optional>

#include "htl/lexer.h"
#include "util/parse.h"
#include "util/string_util.h"

namespace htl {

namespace {

// Recognizes level-modal operator identifiers: at-next-level, at-level-<i>,
// at-<name>-level.
std::optional<LevelSpec> ParseLevelIdent(const std::string& ident) {
  if (!StartsWith(ident, "at-")) return std::nullopt;
  if (ident == "at-next-level") {
    LevelSpec s;
    s.kind = LevelSpec::Kind::kNextLevel;
    return s;
  }
  constexpr std::string_view kLevelPrefix = "at-level-";
  if (StartsWith(ident, kLevelPrefix)) {
    const std::string digits = ident.substr(kLevelPrefix.size());
    int32_t level = 0;
    if (!digits.empty() &&
        digits.find_first_not_of("0123456789") == std::string::npos &&
        ParseInt32(digits, &level)) {
      LevelSpec s;
      s.kind = LevelSpec::Kind::kAbsolute;
      s.level = level;
      return s;
    }
    return std::nullopt;
  }
  constexpr std::string_view kSuffix = "-level";
  if (ident.size() > 3 + kSuffix.size() &&
      ident.compare(ident.size() - kSuffix.size(), kSuffix.size(), kSuffix) == 0) {
    LevelSpec s;
    s.kind = LevelSpec::Kind::kNamed;
    s.name = ident.substr(3, ident.size() - 3 - kSuffix.size());
    return s;
  }
  return std::nullopt;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<FormulaPtr> Parse() {
    HTL_ASSIGN_OR_RETURN(FormulaPtr f, ParseUntil());
    if (Peek().kind != TokenKind::kEnd) {
      return Error(StrCat("unexpected ", Peek().ToString(), " after formula"));
    }
    return f;
  }

 private:
  /// Hard bound on recursive-descent depth: adversarial `((((...` token
  /// soup returns ParseError instead of risking a stack overflow. Genuine
  /// queries nest orders of magnitude shallower (each syntactic nesting
  /// level costs ~3 tracked frames, so ~340 real nesting levels fit).
  static constexpr int kMaxDepth = 1024;

  struct DepthGuard {
    explicit DepthGuard(int* depth) : depth_(depth) { ++*depth_; }
    ~DepthGuard() { --*depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    int* depth_;
  };
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token Take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool PeekIdent(std::string_view word) const {
    return Peek().kind == TokenKind::kIdent && Peek().text == word;
  }
  bool TakeIdent(std::string_view word) {
    if (!PeekIdent(word)) return false;
    ++pos_;
    return true;
  }
  Status Error(const std::string& msg) const {
    return Status::ParseError(StrCat(msg, " at offset ", Peek().offset));
  }
  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error(StrCat("expected ", TokenKindName(kind), ", found ",
                          Peek().ToString()));
    }
    ++pos_;
    return Status::OK();
  }

  Result<FormulaPtr> ParseUntil() {
    DepthGuard guard(&depth_);
    if (depth_ > kMaxDepth) return Error("formula nesting too deep");
    HTL_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseOr());
    if (TakeIdent("until")) {
      HTL_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUntil());
      return MakeUntil(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FormulaPtr> ParseOr() {
    HTL_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseAnd());
    while (TakeIdent("or")) {
      HTL_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseAnd());
      lhs = MakeOr(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FormulaPtr> ParseAnd() {
    HTL_ASSIGN_OR_RETURN(FormulaPtr lhs, ParseUnary());
    while (TakeIdent("and")) {
      HTL_ASSIGN_OR_RETURN(FormulaPtr rhs, ParseUnary());
      lhs = MakeAnd(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<FormulaPtr> ParseUnary() {
    DepthGuard guard(&depth_);
    if (depth_ > kMaxDepth) return Error("formula nesting too deep");
    if (TakeIdent("not")) {
      HTL_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return MakeNot(std::move(f));
    }
    if (TakeIdent("next")) {
      HTL_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return MakeNext(std::move(f));
    }
    if (TakeIdent("eventually")) {
      HTL_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return MakeEventually(std::move(f));
    }
    if (TakeIdent("exists")) return ParseExists();
    if (Peek().kind == TokenKind::kLBracket) return ParseFreeze();
    if (Peek().kind == TokenKind::kIdent) {
      std::optional<LevelSpec> level = ParseLevelIdent(Peek().text);
      if (level.has_value()) {
        Take();
        HTL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
        HTL_ASSIGN_OR_RETURN(FormulaPtr body, ParseUntil());
        HTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        auto f = MakeAtNextLevel(std::move(body));
        f->level = *level;
        return f;
      }
    }
    return ParsePrimary();
  }

  Result<FormulaPtr> ParseExists() {
    std::vector<std::string> vars;
    while (true) {
      if (Peek().kind != TokenKind::kIdent) return Error("expected variable name");
      vars.push_back(Take().text);
      if (Peek().kind == TokenKind::kComma) {
        ++pos_;
        continue;
      }
      break;
    }
    HTL_RETURN_IF_ERROR(Expect(TokenKind::kLParen));
    HTL_ASSIGN_OR_RETURN(FormulaPtr body, ParseUntil());
    HTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
    return MakeExists(std::move(vars), std::move(body));
  }

  Result<FormulaPtr> ParseFreeze() {
    HTL_RETURN_IF_ERROR(Expect(TokenKind::kLBracket));
    if (Peek().kind != TokenKind::kIdent) return Error("expected attribute variable");
    std::string var = Take().text;
    HTL_RETURN_IF_ERROR(Expect(TokenKind::kArrow));
    HTL_ASSIGN_OR_RETURN(AttrTerm term, ParseTerm());
    if (term.kind == AttrTerm::Kind::kLiteral) {
      return Error("freeze quantifier requires an attribute function, not a literal");
    }
    if (term.kind == AttrTerm::Kind::kName) {
      // A bare name after <- is a segment attribute (e.g. [d <- duration]).
      term = AttrTerm::SegmentAttr(term.name);
    }
    HTL_RETURN_IF_ERROR(Expect(TokenKind::kRBracket));
    HTL_ASSIGN_OR_RETURN(FormulaPtr body, ParseUnary());
    return MakeFreeze(std::move(var), std::move(term), std::move(body));
  }

  static std::optional<CompareOp> AsCompareOp(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq:
        return CompareOp::kEq;
      case TokenKind::kNe:
        return CompareOp::kNe;
      case TokenKind::kLt:
        return CompareOp::kLt;
      case TokenKind::kLe:
        return CompareOp::kLe;
      case TokenKind::kGt:
        return CompareOp::kGt;
      case TokenKind::kGe:
        return CompareOp::kGe;
      default:
        return std::nullopt;
    }
  }

  Result<AttrTerm> ParseTerm() {
    const Token& t = Peek();
    if (t.kind == TokenKind::kInt || t.kind == TokenKind::kFloat) {
      AttrTerm term = AttrTerm::Literal(Take().number);
      return term;
    }
    if (t.kind == TokenKind::kString) {
      AttrTerm term = AttrTerm::Literal(AttrValue(Take().text));
      return term;
    }
    if (t.kind == TokenKind::kIdent) {
      std::string name = Take().text;
      if (Peek().kind == TokenKind::kLParen) {
        ++pos_;
        if (Peek().kind != TokenKind::kIdent) {
          return Error(StrCat("expected object variable in ", name, "(...)"));
        }
        std::string var = Take().text;
        HTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
        return AttrTerm::AttrOf(std::move(name), std::move(var));
      }
      return AttrTerm::Name(std::move(name));
    }
    return Error(StrCat("expected a term, found ", t.ToString()));
  }

  // Optional '@ <number>' weight suffix; defaults to 1.
  Result<double> ParseWeight() {
    if (Peek().kind != TokenKind::kAt) return 1.0;
    ++pos_;
    if (Peek().kind != TokenKind::kInt && Peek().kind != TokenKind::kFloat) {
      return Error("expected a number after '@'");
    }
    return Take().number.AsDouble();
  }

  Result<FormulaPtr> ParsePrimary() {
    if (Peek().kind == TokenKind::kLParen) {
      ++pos_;
      HTL_ASSIGN_OR_RETURN(FormulaPtr f, ParseUntil());
      HTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      return f;
    }
    if (TakeIdent("true")) return MakeTrue();
    if (TakeIdent("false")) return MakeFalse();
    if (PeekIdent("present") && Peek(1).kind == TokenKind::kLParen) {
      Take();
      ++pos_;
      if (Peek().kind != TokenKind::kIdent) return Error("expected object variable");
      std::string var = Take().text;
      HTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      HTL_ASSIGN_OR_RETURN(double weight, ParseWeight());
      return MakePresent(std::move(var), weight);
    }
    // Predicate or comparison.
    if (Peek().kind == TokenKind::kIdent && Peek(1).kind == TokenKind::kLParen) {
      // IDENT '(' ... ')' — attribute function (1 arg, followed by a compare
      // op) or a k-ary predicate.
      std::string name = Take().text;
      ++pos_;  // '('
      std::vector<std::string> args;
      if (Peek().kind != TokenKind::kRParen) {
        while (true) {
          if (Peek().kind != TokenKind::kIdent) {
            return Error(StrCat("expected object variable in ", name, "(...)"));
          }
          args.push_back(Take().text);
          if (Peek().kind == TokenKind::kComma) {
            ++pos_;
            continue;
          }
          break;
        }
      }
      HTL_RETURN_IF_ERROR(Expect(TokenKind::kRParen));
      std::optional<CompareOp> op = AsCompareOp(Peek().kind);
      if (op.has_value()) {
        if (args.size() != 1) {
          return Error(StrCat("attribute function ", name, " must take one variable"));
        }
        ++pos_;
        HTL_ASSIGN_OR_RETURN(AttrTerm rhs, ParseTerm());
        HTL_ASSIGN_OR_RETURN(double weight, ParseWeight());
        return MakeCompare(AttrTerm::AttrOf(name, args[0]), *op, std::move(rhs), weight);
      }
      HTL_ASSIGN_OR_RETURN(double weight, ParseWeight());
      return MakePredicate(std::move(name), std::move(args), weight);
    }
    // Bare term compared to another term, e.g. type = 'western' or h < 5.
    HTL_ASSIGN_OR_RETURN(AttrTerm lhs, ParseTerm());
    std::optional<CompareOp> op = AsCompareOp(Peek().kind);
    if (!op.has_value()) {
      return Error(StrCat("expected a comparison operator, found ", Peek().ToString()));
    }
    ++pos_;
    HTL_ASSIGN_OR_RETURN(AttrTerm rhs, ParseTerm());
    HTL_ASSIGN_OR_RETURN(double weight, ParseWeight());
    return MakeCompare(std::move(lhs), *op, std::move(rhs), weight);
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<FormulaPtr> ParseFormula(std::string_view text) {
  HTL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace htl
