#include "htl/bound.h"

#include <algorithm>

#include "picture/atomic.h"

namespace htl {
namespace {

// Ground comparison, mirroring picture/constraint_eval.cc: null satisfies
// nothing; ordered operators use AttrValue::LessThan (numeric-or-string).
bool Compare(const AttrValue& lhs, CompareOp op, const AttrValue& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  switch (op) {
    case CompareOp::kEq: return lhs == rhs;
    case CompareOp::kNe: return !(lhs == rhs);
    case CompareOp::kLt: return lhs.LessThan(rhs);
    case CompareOp::kLe: return lhs.LessThan(rhs) || lhs == rhs;
    case CompareOp::kGt: return rhs.LessThan(lhs);
    case CompareOp::kGe: return rhs.LessThan(lhs) || lhs == rhs;
  }
  return true;  // Unreachable; unknown widens to satisfiable.
}

// Could any value in `domain` satisfy `OP literal`? Exact while the domain
// retained every distinct value; a saturated domain stays exact for ordered
// comparisons against numeric literals (the numeric range outlives the cap:
// unseen non-numeric values cannot satisfy a mixed-kind ordered comparison)
// and widens to "satisfiable" everywhere else.
bool DomainSatisfiable(const VideoStats::AttrDomain* domain, CompareOp op,
                       const AttrValue& literal) {
  if (domain == nullptr || literal.is_null()) return false;
  for (const AttrValue& v : domain->values) {
    if (Compare(v, op, literal)) return true;
  }
  if (!domain->saturated) return false;
  if (literal.is_numeric() &&
      (op == CompareOp::kLt || op == CompareOp::kLe || op == CompareOp::kGt ||
       op == CompareOp::kGe)) {
    if (!domain->has_numeric) return false;
    const double lit = literal.AsDouble();
    switch (op) {
      case CompareOp::kLt: return domain->num_min < lit;
      case CompareOp::kLe: return domain->num_min <= lit;
      case CompareOp::kGt: return domain->num_max > lit;
      case CompareOp::kGe: return domain->num_max >= lit;
      default: break;
    }
  }
  return true;  // Saturated equality/inequality: an unseen value may match.
}

// One side of a comparison, reduced to what the stats can check: a literal,
// an attribute domain lookup, or "anything" (attribute variables bound by
// freeze, unresolved names — conservatively satisfiable).
struct TermView {
  enum class Kind { kLiteral, kDomain, kAny } kind = Kind::kAny;
  const AttrValue* literal = nullptr;
  const VideoStats::AttrDomain* domain = nullptr;  // May be null: empty domain.
};

TermView ViewTerm(const AttrTerm& term, const VideoStats& stats, int level) {
  TermView view;
  switch (term.kind) {
    case AttrTerm::Kind::kLiteral:
      view.kind = TermView::Kind::kLiteral;
      view.literal = &term.literal;
      break;
    case AttrTerm::Kind::kSegmentAttr:
      view.kind = TermView::Kind::kDomain;
      view.domain = stats.Domain(level, VideoStats::Scope::kSegment, term.name);
      break;
    case AttrTerm::Kind::kAttrOfVar:
      view.kind = TermView::Kind::kDomain;
      view.domain = stats.Domain(level, VideoStats::Scope::kObject, term.name);
      break;
    case AttrTerm::Kind::kVariable:  // Freeze-bound: any frozen value.
    case AttrTerm::Kind::kName:      // Unbound name: never claim impossible.
      view.kind = TermView::Kind::kAny;
      break;
  }
  return view;
}

CompareOp Flip(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return CompareOp::kGt;
    case CompareOp::kLe: return CompareOp::kGe;
    case CompareOp::kGt: return CompareOp::kLt;
    case CompareOp::kGe: return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe: return op;
  }
  return op;
}

// Whether `c` could be satisfied by some segment/object/binding at `level`.
// Independent per constraint: joint satisfiability (one object providing
// every conjunct) is not required for an upper bound on the weighted sum.
bool ConstraintSatisfiable(const Constraint& c, const VideoStats& stats, int level) {
  switch (c.kind) {
    case Constraint::Kind::kPresent:
      return stats.HasObjects(level);
    case Constraint::Kind::kPredicate:
      return stats.HasFact(level, c.pred_name, c.pred_args.size());
    case Constraint::Kind::kCompare: {
      const TermView lhs = ViewTerm(c.lhs, stats, level);
      const TermView rhs = ViewTerm(c.rhs, stats, level);
      if (lhs.kind == TermView::Kind::kAny || rhs.kind == TermView::Kind::kAny) {
        return true;
      }
      if (lhs.kind == TermView::Kind::kLiteral &&
          rhs.kind == TermView::Kind::kLiteral) {
        return Compare(*lhs.literal, c.op, *rhs.literal);
      }
      if (lhs.kind == TermView::Kind::kDomain &&
          rhs.kind == TermView::Kind::kLiteral) {
        return DomainSatisfiable(lhs.domain, c.op, *rhs.literal);
      }
      if (lhs.kind == TermView::Kind::kLiteral &&
          rhs.kind == TermView::Kind::kDomain) {
        return DomainSatisfiable(rhs.domain, Flip(c.op), *lhs.literal);
      }
      // Domain-to-domain (two attributes): checking cross products would
      // need joint per-object reasoning; widen to satisfiable.
      return true;
    }
  }
  return true;
}

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

double Bound(const Formula& f, const VideoTree& video, const VideoStats& stats,
             int level, const BoundOptions& options) {
  // Maximal atomic-shaped subtrees are one picture query scored by weighted
  // partial matching — regardless of the and-semantics knob, exactly as the
  // engines fold them (DirectEngine::EvalTable / vm compiler). The bound is
  // the weight fraction of the independently-satisfiable constraints.
  if (f.kind != FormulaKind::kTrue && f.kind != FormulaKind::kFalse &&
      IsAtomicShape(f)) {
    Result<AtomicFormula> atomic = ExtractAtomic(f);
    if (!atomic.ok()) return 1.0;  // Shape drift: never prune on uncertainty.
    double satisfiable = 0.0;
    double total = 0.0;
    for (const Constraint& c : atomic.value().constraints) {
      total += c.weight;
      if (ConstraintSatisfiable(c, stats, level)) satisfiable += c.weight;
    }
    if (total <= 0.0) return 1.0;
    return Clamp01(satisfiable / total);
  }
  switch (f.kind) {
    case FormulaKind::kTrue:
      return 1.0;
    case FormulaKind::kFalse:
      return 0.0;
    case FormulaKind::kAnd: {
      const double ub_l = Bound(*f.left, video, stats, level, options);
      const double ub_r = Bound(*f.right, video, stats, level, options);
      if (options.fuzzy_and) return std::min(ub_l, ub_r);  // FuzzyMinAndMerge.
      // AndMerge: actuals add, max = ml + mr (partial satisfaction keeps
      // one-sided values, still bounded by the weighted sum).
      const double ml = MaxSimilarity(*f.left);
      const double mr = MaxSimilarity(*f.right);
      if (ml + mr <= 0.0) return 1.0;
      return Clamp01((ub_l * ml + ub_r * mr) / (ml + mr));
    }
    case FormulaKind::kOr: {
      // OrMerge: pointwise max of actuals, max = max(ml, mr).
      const double ub_l = Bound(*f.left, video, stats, level, options);
      const double ub_r = Bound(*f.right, video, stats, level, options);
      const double ml = MaxSimilarity(*f.left);
      const double mr = MaxSimilarity(*f.right);
      const double m = std::max(ml, mr);
      if (m <= 0.0) return 1.0;
      return Clamp01(std::max(ub_l * ml, ub_r * mr) / m);
    }
    case FormulaKind::kNot:
      // Complement: actual' = max - actual. Bounding it from above needs a
      // *lower* bound on the body, which the stats do not derive.
      return 1.0;
    case FormulaKind::kNext:       // NextShift: values move, never grow.
    case FormulaKind::kEventually:  // Suffix max of the body's values.
    case FormulaKind::kExists:      // MultiMax over bindings of the body.
    case FormulaKind::kFreeze:      // Body with the variable frozen ("any").
      return Bound(*f.left, video, stats, level, options);
    case FormulaKind::kUntil:
      // UntilMerge: f(u) = max(h(u), gate * f(u+1)), max = h.max — the left
      // operand only gates, so the attainable fraction is the right's.
      return Bound(*f.right, video, stats, level, options);
    case FormulaKind::kLevel: {
      // Mirror DirectEngine::ResolveLevel; an unresolvable target makes the
      // engine fail the video, which pruning must not mask — widen to 1.
      int target = level + 1;
      switch (f.level.kind) {
        case LevelSpec::Kind::kNextLevel:
          target = level + 1;
          break;
        case LevelSpec::Kind::kAbsolute:
          target = f.level.level;
          break;
        case LevelSpec::Kind::kNamed: {
          Result<int> named = video.LevelByName(f.level.name);
          if (!named.ok()) return 1.0;
          target = named.value();
          break;
        }
      }
      if (target <= level || target > video.num_levels()) return 1.0;
      // Each parent position scores the body's value at one descendant, so
      // the parent fraction is bounded by the body's bound at the target.
      return Bound(*f.left, video, stats, target, options);
    }
    case FormulaKind::kConstraint:
      break;  // Atomic-shaped; handled above. Fall through conservatively.
  }
  return 1.0;
}

}  // namespace

double UpperBoundFraction(const Formula& f, const VideoTree& video,
                          const VideoStats& stats, int level,
                          const BoundOptions& options) {
  return Bound(f, video, stats, level, options);
}

}  // namespace htl
