#include "htl/classifier.h"

namespace htl {

namespace {

struct Flags {
  bool has_not_or_false = false;       // kNot, kOr or kFalse anywhere.
  bool has_level = false;              // any level modal operator.
  bool has_freeze = false;             // any freeze quantifier.
  bool exists_over_temporal = false;   // some exists scope contains a
                                       // temporal/level operator...
  bool nonprefix_exists_temporal = false;  // ...and that exists is not in
                                           // the prenex prefix.
  bool var_var_compare = false;        // attrvar OP attrvar.
};

// `in_prefix` is true while we are still inside the leading chain of
// existential quantifiers of the whole formula.
void Scan(const Formula& f, bool in_prefix, Flags* flags) {
  switch (f.kind) {
    case FormulaKind::kTrue:
      return;
    case FormulaKind::kFalse:
      flags->has_not_or_false = true;
      return;
    case FormulaKind::kConstraint: {
      const Constraint& c = f.constraint;
      if (c.kind == Constraint::Kind::kCompare &&
          c.lhs.kind == AttrTerm::Kind::kVariable &&
          c.rhs.kind == AttrTerm::Kind::kVariable) {
        flags->var_var_compare = true;
      }
      return;
    }
    case FormulaKind::kNot:
    case FormulaKind::kOr:
      flags->has_not_or_false = true;
      break;
    case FormulaKind::kLevel:
      // A level operator opens a fresh formula over the target level's
      // sequence, so a prenex existential prefix may restart inside it —
      // the paper's own example `type = western and at-frame-level(f)` with
      // f = formula (B) is extended conjunctive.
      flags->has_level = true;
      Scan(*f.left, /*in_prefix=*/true, flags);
      return;
    case FormulaKind::kFreeze:
      flags->has_freeze = true;
      break;
    case FormulaKind::kExists:
      if (!IsNonTemporal(*f.left)) {
        flags->exists_over_temporal = true;
        if (!in_prefix) flags->nonprefix_exists_temporal = true;
      }
      Scan(*f.left, in_prefix, flags);
      return;
    default:
      break;
  }
  if (f.left) Scan(*f.left, /*in_prefix=*/false, flags);
  if (f.right) Scan(*f.right, /*in_prefix=*/false, flags);
}

}  // namespace

std::string_view FormulaClassName(FormulaClass c) {
  switch (c) {
    case FormulaClass::kType1:
      return "type(1)";
    case FormulaClass::kType2:
      return "type(2)";
    case FormulaClass::kConjunctive:
      return "conjunctive";
    case FormulaClass::kExtendedConjunctive:
      return "extended-conjunctive";
    case FormulaClass::kGeneral:
      return "general";
  }
  return "?";
}

FormulaClass Classify(const Formula& f) {
  Flags flags;
  Scan(f, /*in_prefix=*/true, &flags);
  if (flags.has_not_or_false || flags.nonprefix_exists_temporal || flags.var_var_compare) {
    return FormulaClass::kGeneral;
  }
  if (flags.has_level) return FormulaClass::kExtendedConjunctive;
  if (flags.has_freeze) return FormulaClass::kConjunctive;
  if (flags.exists_over_temporal) return FormulaClass::kType2;
  return FormulaClass::kType1;
}

}  // namespace htl
