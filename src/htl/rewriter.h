#ifndef HTL_HTL_REWRITER_H_
#define HTL_HTL_REWRITER_H_

#include "htl/ast.h"

namespace htl {

/// Similarity-preserving formula normalization — a light query optimizer in
/// front of both engines. Every rule preserves the section 2.5 semantics
/// *exactly*, including the static maximum m(f) (which is why, e.g.,
/// `f and true` is NOT simplified: dropping `true` would change m):
///
///   eventually (eventually f)   -> eventually f
///   true until f                -> eventually f
///   exists X (exists Y (f))     -> exists X∪Y (f)     (flattening)
///   not (not f)                 -> f
///   not true / not false        -> false / true
///   next false                  -> false
///   eventually false            -> false
///   f until false               -> false
///   false until f               -> f                  (no chain can extend)
///   f or f                      -> f                  (syntactic identity)
///   [y <- q] f, y unused in f   -> f
///
/// The two `until` rules assume the until threshold lies in (0, 1] — the
/// meaningful range (at tau = 0 even `false` would extend a chain; above 1
/// nothing would, not even `true`).
///
/// Rules apply bottom-up to a fixed point. Returns the rewritten tree (the
/// input is consumed). Idempotent: Rewrite(Rewrite(f)) == Rewrite(f).
FormulaPtr Rewrite(FormulaPtr f);

/// Number of rule applications in the last Rewrite on this thread —
/// exposed for tests and EXPLAIN-style diagnostics.
int LastRewriteCount();

}  // namespace htl

#endif  // HTL_HTL_REWRITER_H_
