#include "htl/lexer.h"

#include <cctype>

#include "util/parse.h"
#include "util/string_util.h"

namespace htl {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

std::string_view TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kInt:
      return "integer";
    case TokenKind::kFloat:
      return "number";
    case TokenKind::kString:
      return "string";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kAt:
      return "'@'";
    case TokenKind::kArrow:
      return "'<-'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

std::string Token::ToString() const {
  if (kind == TokenKind::kIdent) return StrCat("ident(", text, ")");
  if (kind == TokenKind::kString) return StrCat("string('", text, "')");
  if (kind == TokenKind::kInt || kind == TokenKind::kFloat) {
    return StrCat("number(", number.ToString(), ")");
  }
  return std::string(TokenKindName(kind));
}

Result<std::vector<Token>> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = text.size();
  auto error = [&](const std::string& msg) {
    return Status::ParseError(StrCat(msg, " at offset ", i));
  };
  auto push = [&](TokenKind kind, size_t offset) {
    Token t;
    t.kind = kind;
    t.offset = offset;
    out.push_back(std::move(t));
  };
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    const size_t start = i;
    if (IsIdentStart(c)) {
      ++i;
      while (i < n) {
        if (IsIdentChar(text[i])) {
          ++i;
        } else if (text[i] == '-' && i + 1 < n && IsIdentChar(text[i + 1])) {
          i += 2;
        } else {
          break;
        }
      }
      Token t;
      t.kind = TokenKind::kIdent;
      t.text = std::string(text.substr(start, i - start));
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    if (IsDigit(c) || (c == '-' && i + 1 < n && IsDigit(text[i + 1]))) {
      ++i;
      bool is_float = false;
      while (i < n && (IsDigit(text[i]) || (!is_float && text[i] == '.'))) {
        if (text[i] == '.') {
          if (i + 1 >= n || !IsDigit(text[i + 1])) break;
          is_float = true;
        }
        ++i;
      }
      const std::string num(text.substr(start, i - start));
      Token t;
      t.kind = is_float ? TokenKind::kFloat : TokenKind::kInt;
      if (is_float) {
        double d = 0;
        if (!ParseDouble(num, &d)) {
          return Status::ParseError(StrCat("bad numeric literal '", num, "'"));
        }
        t.number = AttrValue(d);
      } else {
        int64_t v = 0;
        if (!ParseInt64(num, &v)) {
          return Status::ParseError(StrCat("integer literal out of range '", num, "'"));
        }
        t.number = AttrValue(v);
      }
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\'') {
          if (i + 1 < n && text[i + 1] == '\'') {  // '' escapes a quote.
            value += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        value += text[i];
        ++i;
      }
      if (!closed) return error("unterminated string literal");
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::move(value);
      t.offset = start;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '(':
        push(TokenKind::kLParen, start);
        ++i;
        continue;
      case ')':
        push(TokenKind::kRParen, start);
        ++i;
        continue;
      case '[':
        push(TokenKind::kLBracket, start);
        ++i;
        continue;
      case ']':
        push(TokenKind::kRBracket, start);
        ++i;
        continue;
      case ',':
        push(TokenKind::kComma, start);
        ++i;
        continue;
      case '@':
        push(TokenKind::kAt, start);
        ++i;
        continue;
      case '=':
        push(TokenKind::kEq, start);
        ++i;
        continue;
      case '!':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kNe, start);
          i += 2;
          continue;
        }
        return error("unexpected '!'");
      case '<':
        if (i + 1 < n && text[i + 1] == '-') {
          push(TokenKind::kArrow, start);
          i += 2;
          continue;
        }
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kLe, start);
          i += 2;
          continue;
        }
        push(TokenKind::kLt, start);
        ++i;
        continue;
      case '>':
        if (i + 1 < n && text[i + 1] == '=') {
          push(TokenKind::kGe, start);
          i += 2;
          continue;
        }
        push(TokenKind::kGt, start);
        ++i;
        continue;
      default:
        return error(StrCat("unexpected character '", std::string(1, c), "'"));
    }
  }
  push(TokenKind::kEnd, n);
  return out;
}

}  // namespace htl
