#ifndef HTL_HTL_CLASSIFIER_H_
#define HTL_HTL_CLASSIFIER_H_

#include <string>

#include "htl/ast.h"

namespace htl {

/// The formula classes of sections 2.5 and 3, in increasing generality:
/// type (1) ⊂ type (2) ⊂ conjunctive ⊂ extended conjunctive ⊂ general.
enum class FormulaClass {
  /// No negation/disjunction, no level modal operators, no freeze
  /// quantifiers, and no temporal operator inside the scope of any
  /// existential quantifier — a tree of non-temporal formulas joined by
  /// `and` and temporal operators. Evaluated purely on similarity lists.
  kType1,
  /// Conjunctive without freeze quantifiers: existential quantifiers over
  /// temporal subformulas allowed only as a prenex prefix.
  kType2,
  /// No negation/disjunction, no level modal operators, every variable
  /// bound, every existential quantifier prenex or with a non-temporal
  /// scope. Freeze quantifiers allowed.
  kConjunctive,
  /// Conjunctive plus level modal operators.
  kExtendedConjunctive,
  /// Everything else (negation, disjunction, non-prenex existentials over
  /// temporal scopes, attribute-variable-to-variable comparisons). Only the
  /// reference evaluator handles these.
  kGeneral,
};

std::string_view FormulaClassName(FormulaClass c);

/// Determines the smallest class containing `f`. Expects a bound formula
/// (see htl/binder.h).
FormulaClass Classify(const Formula& f);

}  // namespace htl

#endif  // HTL_HTL_CLASSIFIER_H_
