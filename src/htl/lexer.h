#ifndef HTL_HTL_LEXER_H_
#define HTL_HTL_LEXER_H_

#include <string>
#include <vector>

#include "htl/token.h"
#include "util/result.h"

namespace htl {

/// Tokenizes HTL query text. Returns all tokens including a trailing kEnd,
/// or a ParseError naming the offending offset.
///
/// Lexical rules:
///   * identifiers: [A-Za-z_][A-Za-z0-9_]* with '-' permitted when the next
///     character is alphanumeric, so `at-next-level` and `at-level-3` are
///     single identifiers (HTL has no arithmetic, so '-' is unambiguous);
///   * numbers: 12, -4, 3.25, -0.5;
///   * strings: single-quoted, '' escapes a quote;
///   * comments: from # to end of line.
Result<std::vector<Token>> Tokenize(std::string_view text);

}  // namespace htl

#endif  // HTL_HTL_LEXER_H_
