#ifndef HTL_HTL_FINGERPRINT_H_
#define HTL_HTL_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "htl/ast.h"

namespace htl {

/// Canonical cache key of `f`: the concrete-syntax serialization (which
/// carries constraint weights and freeze terms verbatim) with the operands
/// of the commutative connectives `and` / `or` ordered by their own
/// canonical form. Two formulas with equal canonical keys evaluate to
/// bit-identical similarity lists: the engines combine `and` by IEEE
/// addition of actuals (or the fuzzy min of fractions) and `or` by max,
/// all symmetric at a single node, so swapping one node's operands never
/// reaches the result bits. Non-commutative operators (`until`, `next`,
/// quantifiers, level modalities) keep their order. Apply AFTER Rewrite():
/// the rewriter is idempotent and performs every other normalization, so
/// prepared queries that rewrite to the same shape share one key.
std::string CanonicalFormulaKey(const Formula& f);

/// FNV-1a 64-bit fingerprint of an arbitrary key string — stable across
/// processes and platforms, used to shard cache key spaces.
uint64_t FingerprintKey(std::string_view key);

/// FingerprintKey(CanonicalFormulaKey(f)).
uint64_t FingerprintFormula(const Formula& f);

}  // namespace htl

#endif  // HTL_HTL_FINGERPRINT_H_
