#include "htl/binder.h"

#include <algorithm>
#include <vector>

#include "util/string_util.h"

namespace htl {

namespace {

class Binder {
 public:
  explicit Binder(const BindOptions& options) : options_(options) {}

  Status Visit(Formula* f) {
    switch (f->kind) {
      case FormulaKind::kTrue:
      case FormulaKind::kFalse:
        return Status::OK();
      case FormulaKind::kConstraint:
        return VisitConstraint(&f->constraint);
      case FormulaKind::kExists: {
        for (const std::string& v : f->vars) {
          HTL_RETURN_IF_ERROR(CheckFresh(v));
          object_scope_.push_back(v);
        }
        Status s = Visit(f->left.get());
        object_scope_.resize(object_scope_.size() - f->vars.size());
        return s;
      }
      case FormulaKind::kFreeze: {
        HTL_RETURN_IF_ERROR(CheckFresh(f->freeze_var));
        HTL_RETURN_IF_ERROR(VisitTerm(&f->freeze_term, /*object_position=*/false));
        if (f->freeze_term.kind != AttrTerm::Kind::kAttrOfVar &&
            f->freeze_term.kind != AttrTerm::Kind::kSegmentAttr) {
          return Status::InvalidArgument(
              StrCat("freeze quantifier [", f->freeze_var,
                     " <- ...] must capture an attribute function"));
        }
        attr_scope_.push_back(f->freeze_var);
        Status s = Visit(f->left.get());
        attr_scope_.pop_back();
        return s;
      }
      case FormulaKind::kLevel:
        if (f->level.kind == LevelSpec::Kind::kAbsolute && f->level.level < 1) {
          return Status::InvalidArgument(
              StrCat("level number must be >= 1, got ", f->level.level));
        }
        return Visit(f->left.get());
      default: {
        if (f->left) HTL_RETURN_IF_ERROR(Visit(f->left.get()));
        if (f->right) HTL_RETURN_IF_ERROR(Visit(f->right.get()));
        return Status::OK();
      }
    }
  }

 private:
  bool InObjectScope(const std::string& v) const {
    return std::find(object_scope_.begin(), object_scope_.end(), v) != object_scope_.end();
  }
  bool InAttrScope(const std::string& v) const {
    return std::find(attr_scope_.begin(), attr_scope_.end(), v) != attr_scope_.end();
  }

  Status CheckFresh(const std::string& v) const {
    if (InObjectScope(v) || InAttrScope(v)) {
      return Status::InvalidArgument(StrCat("variable '", v, "' is already bound"));
    }
    return Status::OK();
  }

  Status CheckObjectVar(const std::string& v) const {
    if (InAttrScope(v)) {
      return Status::InvalidArgument(
          StrCat("attribute variable '", v, "' used as an object variable"));
    }
    if (options_.require_closed && !InObjectScope(v)) {
      return Status::InvalidArgument(
          StrCat("unbound object variable '", v,
                 "' (retrieval queries must be closed formulas)"));
    }
    return Status::OK();
  }

  Status VisitTerm(AttrTerm* t, bool object_position) {
    switch (t->kind) {
      case AttrTerm::Kind::kLiteral:
        return Status::OK();
      case AttrTerm::Kind::kName:
        if (InAttrScope(t->name)) {
          t->kind = AttrTerm::Kind::kVariable;
        } else if (InObjectScope(t->name)) {
          return Status::InvalidArgument(
              StrCat("object variable '", t->name, "' used in a value comparison"));
        } else {
          t->kind = AttrTerm::Kind::kSegmentAttr;
        }
        return Status::OK();
      case AttrTerm::Kind::kVariable:
        if (!InAttrScope(t->name)) {
          return Status::InvalidArgument(
              StrCat("unbound attribute variable '", t->name, "'"));
        }
        return Status::OK();
      case AttrTerm::Kind::kAttrOfVar:
        return CheckObjectVar(t->object_var);
      case AttrTerm::Kind::kSegmentAttr:
        return Status::OK();
    }
    (void)object_position;
    return Status::OK();
  }

  Status VisitConstraint(Constraint* c) {
    switch (c->kind) {
      case Constraint::Kind::kPresent:
        return CheckObjectVar(c->object_var);
      case Constraint::Kind::kCompare:
        HTL_RETURN_IF_ERROR(VisitTerm(&c->lhs, false));
        HTL_RETURN_IF_ERROR(VisitTerm(&c->rhs, false));
        return Status::OK();
      case Constraint::Kind::kPredicate:
        // 0-ary predicates are allowed: they name externally supplied
        // similarity lists (the section 4 experimental setup) or segment-
        // level ground facts.
        for (const std::string& a : c->pred_args) {
          HTL_RETURN_IF_ERROR(CheckObjectVar(a));
        }
        return Status::OK();
    }
    return Status::OK();
  }

  const BindOptions& options_;
  std::vector<std::string> object_scope_;
  std::vector<std::string> attr_scope_;
};

}  // namespace

Status Bind(Formula* formula, const BindOptions& options) {
  if (formula == nullptr) return Status::InvalidArgument("null formula");
  Binder binder(options);
  return binder.Visit(formula);
}

}  // namespace htl
