#include "htl/ast.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

AttrTerm AttrTerm::Literal(AttrValue v) {
  AttrTerm t;
  t.kind = Kind::kLiteral;
  t.literal = std::move(v);
  return t;
}

AttrTerm AttrTerm::Name(std::string n) {
  AttrTerm t;
  t.kind = Kind::kName;
  t.name = std::move(n);
  return t;
}

AttrTerm AttrTerm::Variable(std::string n) {
  AttrTerm t;
  t.kind = Kind::kVariable;
  t.name = std::move(n);
  return t;
}

AttrTerm AttrTerm::AttrOf(std::string attr, std::string object_var) {
  AttrTerm t;
  t.kind = Kind::kAttrOfVar;
  t.name = std::move(attr);
  t.object_var = std::move(object_var);
  return t;
}

AttrTerm AttrTerm::SegmentAttr(std::string attr) {
  AttrTerm t;
  t.kind = Kind::kSegmentAttr;
  t.name = std::move(attr);
  return t;
}

std::string AttrTerm::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kName:
    case Kind::kVariable:
    case Kind::kSegmentAttr:
      return name;
    case Kind::kAttrOfVar:
      return StrCat(name, "(", object_var, ")");
  }
  return "?";
}

std::string Constraint::ToString() const {
  std::string body;
  switch (kind) {
    case Kind::kPresent:
      body = StrCat("present(", object_var, ")");
      break;
    case Kind::kCompare:
      body = StrCat(lhs.ToString(), " ", CompareOpName(op), " ", rhs.ToString());
      break;
    case Kind::kPredicate:
      body = StrCat(pred_name, "(", StrJoin(pred_args, ", "), ")");
      break;
  }
  if (weight != 1.0) body = StrCat(body, " @ ", weight);
  return body;
}

std::string LevelSpec::ToString() const {
  switch (kind) {
    case Kind::kNextLevel:
      return "at-next-level";
    case Kind::kAbsolute:
      return StrCat("at-level-", level);
    case Kind::kNamed:
      return StrCat("at-", name, "-level");
  }
  return "?";
}

FormulaPtr Formula::Clone() const {
  auto f = std::make_unique<Formula>();
  f->kind = kind;
  if (left) f->left = left->Clone();
  if (right) f->right = right->Clone();
  f->constraint = constraint;
  f->vars = vars;
  f->freeze_var = freeze_var;
  f->freeze_term = freeze_term;
  f->level = level;
  return f;
}

std::string Formula::ToString() const {
  switch (kind) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kConstraint:
      return constraint.ToString();
    case FormulaKind::kAnd:
      return StrCat("(", left->ToString(), " and ", right->ToString(), ")");
    case FormulaKind::kOr:
      return StrCat("(", left->ToString(), " or ", right->ToString(), ")");
    case FormulaKind::kNot:
      return StrCat("not (", left->ToString(), ")");
    case FormulaKind::kNext:
      return StrCat("next (", left->ToString(), ")");
    case FormulaKind::kEventually:
      return StrCat("eventually (", left->ToString(), ")");
    case FormulaKind::kUntil:
      return StrCat("(", left->ToString(), " until ", right->ToString(), ")");
    case FormulaKind::kExists:
      return StrCat("exists ", StrJoin(vars, ", "), " (", left->ToString(), ")");
    case FormulaKind::kFreeze:
      return StrCat("[", freeze_var, " <- ", freeze_term.ToString(), "] (",
                    left->ToString(), ")");
    case FormulaKind::kLevel:
      return StrCat(level.ToString(), " (", left->ToString(), ")");
  }
  return "?";
}

FormulaPtr MakeTrue() {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kTrue;
  return f;
}

FormulaPtr MakeFalse() {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kFalse;
  return f;
}

FormulaPtr MakeConstraint(Constraint c) {
  auto f = std::make_unique<Formula>();
  f->kind = FormulaKind::kConstraint;
  f->constraint = std::move(c);
  return f;
}

FormulaPtr MakePresent(std::string var, double weight) {
  Constraint c;
  c.kind = Constraint::Kind::kPresent;
  c.object_var = std::move(var);
  c.weight = weight;
  return MakeConstraint(std::move(c));
}

FormulaPtr MakeCompare(AttrTerm lhs, CompareOp op, AttrTerm rhs, double weight) {
  Constraint c;
  c.kind = Constraint::Kind::kCompare;
  c.lhs = std::move(lhs);
  c.op = op;
  c.rhs = std::move(rhs);
  c.weight = weight;
  return MakeConstraint(std::move(c));
}

FormulaPtr MakePredicate(std::string name, std::vector<std::string> args, double weight) {
  Constraint c;
  c.kind = Constraint::Kind::kPredicate;
  c.pred_name = std::move(name);
  c.pred_args = std::move(args);
  c.weight = weight;
  return MakeConstraint(std::move(c));
}

namespace {
FormulaPtr MakeBinary(FormulaKind kind, FormulaPtr a, FormulaPtr b) {
  HTL_CHECK(a != nullptr);
  HTL_CHECK(b != nullptr);
  auto f = std::make_unique<Formula>();
  f->kind = kind;
  f->left = std::move(a);
  f->right = std::move(b);
  return f;
}
FormulaPtr MakeUnary(FormulaKind kind, FormulaPtr a) {
  HTL_CHECK(a != nullptr);
  auto f = std::make_unique<Formula>();
  f->kind = kind;
  f->left = std::move(a);
  return f;
}
}  // namespace

FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b) {
  return MakeBinary(FormulaKind::kAnd, std::move(a), std::move(b));
}
FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b) {
  return MakeBinary(FormulaKind::kOr, std::move(a), std::move(b));
}
FormulaPtr MakeNot(FormulaPtr a) { return MakeUnary(FormulaKind::kNot, std::move(a)); }
FormulaPtr MakeNext(FormulaPtr a) { return MakeUnary(FormulaKind::kNext, std::move(a)); }
FormulaPtr MakeEventually(FormulaPtr a) {
  return MakeUnary(FormulaKind::kEventually, std::move(a));
}
FormulaPtr MakeUntil(FormulaPtr a, FormulaPtr b) {
  return MakeBinary(FormulaKind::kUntil, std::move(a), std::move(b));
}

FormulaPtr MakeExists(std::vector<std::string> vars, FormulaPtr body) {
  auto f = MakeUnary(FormulaKind::kExists, std::move(body));
  f->vars = std::move(vars);
  return f;
}

FormulaPtr MakeFreeze(std::string var, AttrTerm term, FormulaPtr body) {
  auto f = MakeUnary(FormulaKind::kFreeze, std::move(body));
  f->freeze_var = std::move(var);
  f->freeze_term = std::move(term);
  return f;
}

FormulaPtr MakeAtNextLevel(FormulaPtr body) {
  auto f = MakeUnary(FormulaKind::kLevel, std::move(body));
  f->level.kind = LevelSpec::Kind::kNextLevel;
  return f;
}

FormulaPtr MakeAtLevel(int level, FormulaPtr body) {
  auto f = MakeUnary(FormulaKind::kLevel, std::move(body));
  f->level.kind = LevelSpec::Kind::kAbsolute;
  f->level.level = level;
  return f;
}

FormulaPtr MakeAtNamedLevel(std::string name, FormulaPtr body) {
  auto f = MakeUnary(FormulaKind::kLevel, std::move(body));
  f->level.kind = LevelSpec::Kind::kNamed;
  f->level.name = std::move(name);
  return f;
}

namespace {

void AddUnique(std::vector<std::string>& out, const std::string& v) {
  if (std::find(out.begin(), out.end(), v) == out.end()) out.push_back(v);
}

void CollectObjectVars(const Formula& f, std::vector<std::string>& bound,
                       std::vector<std::string>& out) {
  auto is_bound = [&](const std::string& v) {
    return std::find(bound.begin(), bound.end(), v) != bound.end();
  };
  switch (f.kind) {
    case FormulaKind::kConstraint: {
      const Constraint& c = f.constraint;
      if (c.kind == Constraint::Kind::kPresent) {
        if (!is_bound(c.object_var)) AddUnique(out, c.object_var);
      } else if (c.kind == Constraint::Kind::kPredicate) {
        for (const std::string& a : c.pred_args) {
          if (!is_bound(a)) AddUnique(out, a);
        }
      } else {
        for (const AttrTerm* t : {&c.lhs, &c.rhs}) {
          if (t->kind == AttrTerm::Kind::kAttrOfVar && !is_bound(t->object_var)) {
            AddUnique(out, t->object_var);
          }
        }
      }
      return;
    }
    case FormulaKind::kExists: {
      size_t before = bound.size();
      for (const std::string& v : f.vars) bound.push_back(v);
      CollectObjectVars(*f.left, bound, out);
      bound.resize(before);
      return;
    }
    case FormulaKind::kFreeze: {
      if (f.freeze_term.kind == AttrTerm::Kind::kAttrOfVar &&
          !is_bound(f.freeze_term.object_var)) {
        AddUnique(out, f.freeze_term.object_var);
      }
      CollectObjectVars(*f.left, bound, out);
      return;
    }
    default:
      if (f.left) CollectObjectVars(*f.left, bound, out);
      if (f.right) CollectObjectVars(*f.right, bound, out);
      return;
  }
}

void CollectAttrVars(const Formula& f, std::vector<std::string>& bound,
                     std::vector<std::string>& out) {
  auto is_bound = [&](const std::string& v) {
    return std::find(bound.begin(), bound.end(), v) != bound.end();
  };
  switch (f.kind) {
    case FormulaKind::kConstraint: {
      const Constraint& c = f.constraint;
      if (c.kind == Constraint::Kind::kCompare) {
        for (const AttrTerm* t : {&c.lhs, &c.rhs}) {
          if (t->kind == AttrTerm::Kind::kVariable && !is_bound(t->name)) {
            AddUnique(out, t->name);
          }
        }
      }
      return;
    }
    case FormulaKind::kFreeze: {
      bound.push_back(f.freeze_var);
      CollectAttrVars(*f.left, bound, out);
      bound.pop_back();
      return;
    }
    default:
      if (f.left) CollectAttrVars(*f.left, bound, out);
      if (f.right) CollectAttrVars(*f.right, bound, out);
      return;
  }
}

}  // namespace

std::vector<std::string> FreeObjectVars(const Formula& f) {
  std::vector<std::string> bound, out;
  CollectObjectVars(f, bound, out);
  return out;
}

std::vector<std::string> FreeAttrVars(const Formula& f) {
  std::vector<std::string> bound, out;
  CollectAttrVars(f, bound, out);
  return out;
}

bool IsNonTemporal(const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kNext:
    case FormulaKind::kEventually:
    case FormulaKind::kUntil:
    case FormulaKind::kLevel:
      return false;
    default:
      if (f.left && !IsNonTemporal(*f.left)) return false;
      if (f.right && !IsNonTemporal(*f.right)) return false;
      return true;
  }
}

double MaxSimilarity(const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return 1.0;
    case FormulaKind::kConstraint:
      return f.constraint.weight;
    case FormulaKind::kAnd:
      return MaxSimilarity(*f.left) + MaxSimilarity(*f.right);
    case FormulaKind::kOr:
      return std::max(MaxSimilarity(*f.left), MaxSimilarity(*f.right));
    case FormulaKind::kNot:
    case FormulaKind::kNext:
    case FormulaKind::kEventually:
    case FormulaKind::kExists:
    case FormulaKind::kFreeze:
    case FormulaKind::kLevel:
      return MaxSimilarity(*f.left);
    case FormulaKind::kUntil:
      return MaxSimilarity(*f.right);
  }
  return 0.0;
}

}  // namespace htl
