#ifndef HTL_HTL_AST_H_
#define HTL_HTL_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "model/value.h"

namespace htl {

/// Comparison operators allowed in atomic predicates. The paper restricts
/// attribute-variable predicates to <, <=, =, >=, > over integers and = over
/// other types (section 3.3); != is supported for plain attribute-to-literal
/// comparisons as an extension.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CompareOpName(CompareOp op);

/// A term usable inside comparisons: a literal, an attribute variable (bound
/// by a freeze quantifier), an attribute function applied to an object
/// variable (height(x)), or a segment-level attribute (type, title).
struct AttrTerm {
  enum class Kind {
    kLiteral,      // 5, 3.2, 'western'
    kName,         // unresolved bare identifier (parser output; the binder
                   // rewrites it to kVariable or kSegmentAttr)
    kVariable,     // attribute variable bound by [y <- q]
    kAttrOfVar,    // name(object_var), e.g. height(x)
    kSegmentAttr,  // segment attribute, e.g. type in: type = 'western'
  };

  Kind kind = Kind::kLiteral;
  AttrValue literal;       // kLiteral
  std::string name;        // variable name / attribute-function name / attribute
  std::string object_var;  // kAttrOfVar only

  static AttrTerm Literal(AttrValue v);
  static AttrTerm Name(std::string n);
  static AttrTerm Variable(std::string n);
  static AttrTerm AttrOf(std::string attr, std::string object_var);
  static AttrTerm SegmentAttr(std::string attr);

  std::string ToString() const;
};

/// One atomic constraint on a single video segment's meta-data. Non-temporal
/// formulas are conjunctions of these (plus local existential quantifiers);
/// the picture-retrieval substrate scores them by weighted partial match.
struct Constraint {
  enum class Kind {
    kPresent,    // present(x)
    kCompare,    // lhs OP rhs
    kPredicate,  // name(x1, ..., xk) matched against ground facts
  };

  Kind kind = Kind::kPresent;
  std::string object_var;                // kPresent
  AttrTerm lhs, rhs;                     // kCompare
  CompareOp op = CompareOp::kEq;         // kCompare
  std::string pred_name;                 // kPredicate
  std::vector<std::string> pred_args;    // kPredicate (object variables)
  double weight = 1.0;                   // contribution to the similarity max

  std::string ToString() const;
};

/// Which level a level-modal operator addresses.
struct LevelSpec {
  enum class Kind {
    kNextLevel,  // at-next-level
    kAbsolute,   // at-level-i
    kNamed,      // at-scene-level, at-shot-level, at-frame-level, ...
  };

  Kind kind = Kind::kNextLevel;
  int level = 0;      // kAbsolute
  std::string name;   // kNamed

  std::string ToString() const;
};

enum class FormulaKind {
  kTrue,        // constant true (exactly satisfied everywhere)
  kFalse,       // constant false
  kConstraint,  // atomic constraint leaf
  kAnd,
  kOr,          // extension (not in the paper's conjunctive classes)
  kNot,         // extension for the reference semantics; excluded from the
                // optimized classes, as in the paper
  kNext,
  kEventually,
  kUntil,
  kExists,      // exists x1, ..., xn (f)
  kFreeze,      // [y <- q] f
  kLevel,       // at-...-level (f)
};

struct Formula;
using FormulaPtr = std::unique_ptr<Formula>;

/// A node of the HTL abstract syntax tree (section 2.2). Unary operators use
/// `left`; kUntil uses `left until right`.
struct Formula {
  FormulaKind kind = FormulaKind::kTrue;

  FormulaPtr left;
  FormulaPtr right;

  Constraint constraint;            // kConstraint
  std::vector<std::string> vars;    // kExists
  std::string freeze_var;           // kFreeze: y
  AttrTerm freeze_term;             // kFreeze: q (kAttrOfVar or kSegmentAttr)
  LevelSpec level;                  // kLevel

  /// Deep copy.
  FormulaPtr Clone() const;

  /// Concrete-syntax round-trippable form.
  std::string ToString() const;
};

/// Factory helpers for building formulas programmatically; mirrors the
/// concrete syntax. See also htl/parser.h for the textual front end.
FormulaPtr MakeTrue();
FormulaPtr MakeFalse();
FormulaPtr MakeConstraint(Constraint c);
FormulaPtr MakePresent(std::string var, double weight = 1.0);
FormulaPtr MakeCompare(AttrTerm lhs, CompareOp op, AttrTerm rhs, double weight = 1.0);
FormulaPtr MakePredicate(std::string name, std::vector<std::string> args,
                         double weight = 1.0);
FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeNot(FormulaPtr a);
FormulaPtr MakeNext(FormulaPtr a);
FormulaPtr MakeEventually(FormulaPtr a);
FormulaPtr MakeUntil(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeExists(std::vector<std::string> vars, FormulaPtr body);
FormulaPtr MakeFreeze(std::string var, AttrTerm term, FormulaPtr body);
FormulaPtr MakeAtNextLevel(FormulaPtr body);
FormulaPtr MakeAtLevel(int level, FormulaPtr body);
FormulaPtr MakeAtNamedLevel(std::string name, FormulaPtr body);

/// Free object variables of `f` (used by present/predicates/attr functions
/// and not bound by an enclosing exists), in first-occurrence order.
std::vector<std::string> FreeObjectVars(const Formula& f);

/// Free attribute variables of `f` (kVariable terms not bound by an
/// enclosing freeze), in first-occurrence order.
std::vector<std::string> FreeAttrVars(const Formula& f);

/// True when `f` contains no temporal operator and no level-modal operator —
/// a "non-temporal formula" asserting a property of a single segment.
bool IsNonTemporal(const Formula& f);

/// Sum of constraint weights — the static maximum similarity m(f) of
/// section 2.5: m depends only on the formula. (kTrue and kFalse have m=0's
/// conventional replacement 1 so that their fractional value is defined.)
double MaxSimilarity(const Formula& f);

}  // namespace htl

#endif  // HTL_HTL_AST_H_
