#ifndef HTL_HTL_BOUND_H_
#define HTL_HTL_BOUND_H_

#include "htl/ast.h"
#include "model/video.h"
#include "model/video_stats.h"

namespace htl {

/// Knobs the bound derivation must mirror from QueryOptions (a plain struct
/// rather than QueryOptions itself, so htl/ does not depend on engine/).
struct BoundOptions {
  /// True for AndSemantics::kFuzzyMin: non-atomic conjunctions combine as
  /// min of the operand fractions instead of the weighted average.
  bool fuzzy_and = false;
};

/// Absolute floating-point guard band applied when a pruning decision
/// compares a derived bound against the top-k floor: a video is pruned only
/// when `bound < floor - kBoundSlack`. The bound arithmetic re-associates
/// the same weight sums the engines compute, so the two can differ by a few
/// ulps; the band turns "equal up to rounding" into "never pruned", keeping
/// the skip decision sound without requiring bit-exact bound arithmetic.
inline constexpr double kBoundSlack = 1e-9;

/// A sound upper bound, in [0, 1], on the fractional similarity
/// (Sim::fraction()) that `f` can attain on any segment of `video` at
/// `level` — the threshold-style score cap of DESIGN.md "Scale-out
/// retrieval". Derived structurally from `stats` (one VideoStats::Build
/// scan) without evaluating the formula:
///
///   - maximal atomic-shaped subtrees score at most the weight fraction of
///     their independently-satisfiable constraints (the picture system's
///     weighted partial matching, relaxed constraint-by-constraint);
///   - and/or/until/next/eventually/exists/freeze/level nodes combine the
///     operand bounds exactly along the MaxSimilarity() weight structure of
///     the merge kernels (sim/list_ops.h);
///   - anything the derivation cannot see through (negation, unresolvable
///     level names, attribute-variable comparisons) widens to 1 — a bound
///     of 1 never prunes, so unknown always degrades to full evaluation.
///
/// The soundness property (bound >= true best fraction per video, within
/// kBoundSlack) is asserted over randomized corpora and formulas by
/// tests/property/bound_soundness_test.cc, and the end-to-end guarantee
/// (pruning never perturbs ranked output, statuses, or reports) by
/// tests/property/prune_differential_test.cc. Every change here re-runs
/// both (CONTRIBUTING.md ground rule; lint rule `prune-differential`).
double UpperBoundFraction(const Formula& f, const VideoTree& video,
                          const VideoStats& stats, int level,
                          const BoundOptions& options = {});

}  // namespace htl

#endif  // HTL_HTL_BOUND_H_
