#include "htl/rewriter.h"

#include <algorithm>

#include "util/logging.h"

namespace htl {

namespace {

thread_local int g_rewrite_count = 0;

// Does `var` occur (as an attribute variable) anywhere in f? Unresolved
// names (parser output before the binder ran) count conservatively, since
// they may resolve to the variable.
bool UsesAttrVar(const Formula& f, const std::string& var) {
  if (f.kind == FormulaKind::kConstraint &&
      f.constraint.kind == Constraint::Kind::kCompare) {
    for (const AttrTerm* t : {&f.constraint.lhs, &f.constraint.rhs}) {
      if ((t->kind == AttrTerm::Kind::kVariable || t->kind == AttrTerm::Kind::kName) &&
          t->name == var) {
        return true;
      }
    }
  }
  if (f.left && UsesAttrVar(*f.left, var)) return true;
  if (f.right && UsesAttrVar(*f.right, var)) return true;
  return false;
}

// One bottom-up pass; sets *changed when a rule fired.
FormulaPtr Pass(FormulaPtr f, bool* changed) {
  if (f->left) f->left = Pass(std::move(f->left), changed);
  if (f->right) f->right = Pass(std::move(f->right), changed);

  auto fire = [&](FormulaPtr replacement) {
    ++g_rewrite_count;
    *changed = true;
    return replacement;
  };

  switch (f->kind) {
    case FormulaKind::kEventually:
      // eventually (eventually g) -> eventually g.
      if (f->left->kind == FormulaKind::kEventually) return fire(std::move(f->left));
      // eventually false -> false.
      if (f->left->kind == FormulaKind::kFalse) return fire(std::move(f->left));
      break;
    case FormulaKind::kNext:
      // next false -> false.
      if (f->left->kind == FormulaKind::kFalse) return fire(std::move(f->left));
      break;
    case FormulaKind::kUntil:
      // true until g -> eventually g.
      if (f->left->kind == FormulaKind::kTrue) {
        return fire(MakeEventually(std::move(f->right)));
      }
      // g until false -> false.
      if (f->right->kind == FormulaKind::kFalse) return fire(std::move(f->right));
      // false until g -> g (no chain can extend for tau > 0).
      if (f->left->kind == FormulaKind::kFalse) return fire(std::move(f->right));
      break;
    case FormulaKind::kNot:
      // not (not g) -> g.
      if (f->left->kind == FormulaKind::kNot) return fire(std::move(f->left->left));
      // not true -> false; not false -> true.
      if (f->left->kind == FormulaKind::kTrue) return fire(MakeFalse());
      if (f->left->kind == FormulaKind::kFalse) return fire(MakeTrue());
      break;
    case FormulaKind::kExists:
      // exists X (exists Y (g)) -> exists X, Y (g).
      if (f->left->kind == FormulaKind::kExists) {
        for (const std::string& v : f->left->vars) f->vars.push_back(v);
        f->left = std::move(f->left->left);
        ++g_rewrite_count;
        *changed = true;
      }
      break;
    case FormulaKind::kOr:
      // f or f -> f (syntactic identity).
      if (f->left->ToString() == f->right->ToString()) return fire(std::move(f->left));
      break;
    case FormulaKind::kFreeze:
      // [y <- q] g with y unused in g -> g.
      if (!UsesAttrVar(*f->left, f->freeze_var)) return fire(std::move(f->left));
      break;
    default:
      break;
  }
  return f;
}

}  // namespace

FormulaPtr Rewrite(FormulaPtr f) {
  HTL_CHECK(f != nullptr);
  g_rewrite_count = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    f = Pass(std::move(f), &changed);
  }
  return f;
}

int LastRewriteCount() { return g_rewrite_count; }

}  // namespace htl
