#ifndef HTL_OBS_METRICS_H_
#define HTL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace htl::obs {

/// Name of the synthetic reset-sequence gauge every MetricsSnapshot carries
/// (see MetricsRegistry::ResetAll — it is not a registered Gauge).
inline constexpr std::string_view kSnapshotSeqName = "obs.snapshot_seq";

/// A monotonically increasing counter. All operations are relaxed atomics:
/// increments from any thread are safe and never torn, and a snapshot taken
/// while writers run sees each counter at some value it actually held.
class Counter {
 public:
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A gauge: a value that can go up and down (cache sizes, live engines).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram for latencies and sizes. `bounds` are inclusive
/// upper bounds in ascending order; an implicit overflow bucket catches
/// everything above the last bound. Observations are relaxed atomics, so
/// concurrent Observe() calls are safe; a snapshot taken mid-write may be
/// momentarily inconsistent between count and buckets but never corrupt.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(int64_t value);

  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    std::vector<int64_t> bounds;   // Inclusive upper bounds.
    std::vector<int64_t> buckets;  // bounds.size() + 1 (last = overflow).
  };
  Snapshot Snap() const;
  void Reset();

  const std::vector<int64_t>& bounds() const { return bounds_; }

  /// `count` bounds starting at `start`, each `factor` times the previous
  /// (rounded up so bounds stay strictly increasing).
  static std::vector<int64_t> ExponentialBounds(int64_t start, double factor,
                                                int count);

 private:
  std::vector<int64_t> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

/// Point-in-time copy of every registered metric, detached from the live
/// atomics — safe to serialize or diff while queries keep running.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    int64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    int64_t value = 0;
  };
  struct HistogramRow {
    std::string name;
    Histogram::Snapshot hist;
  };

  std::vector<CounterRow> counters;
  std::vector<GaugeRow> gauges;
  std::vector<HistogramRow> histograms;

  /// Multi-line human-readable listing ("name = value" per metric).
  std::string ToText() const;
  /// One JSON object: {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}} — embedded verbatim into BENCH_<name>.json by bench::BenchJson.
  std::string ToJson() const;
};

/// Process-wide registry of named metrics, following the fault_point
/// disarmed-fast-path discipline: HTL_OBS_COUNT compiles in always but
/// reduces to one relaxed atomic load and a predictable branch while the
/// registry is disabled (the default). Benches and servers call
/// SetEnabled(true); the registry mutex is only touched at registration and
/// snapshot time, never on the increment path.
///
/// Names are "area.metric" (e.g. "engine.table_joins", "sim.and_merge.calls")
/// mirroring the fault-point naming convention. Metric objects live for the
/// process lifetime; the pointers handed out are stable and lock-free to use.
class MetricsRegistry {
 public:
  static MetricsRegistry& Instance();

  /// The macro's fast-path gate.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Finds or creates the named metric. The returned pointer is stable for
  /// the process lifetime and safe to cache (HTL_OBS_COUNT does).
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  /// `bounds` are only used on first creation; later calls for the same name
  /// return the existing histogram regardless of bounds.
  Histogram* GetHistogram(std::string_view name, std::vector<int64_t> bounds);

  /// Point-in-time copy of every metric, plus the synthetic gauge
  /// `obs.snapshot_seq` (see ResetAll).
  ///
  /// Concurrency contract with ResetAll: both take the registry mutex, so a
  /// snapshot never observes a *torn* value — but Snapshot() does not stop
  /// writers, so a snapshot racing a reset may mix pre-reset and post-reset
  /// values across metrics, and a counter can appear to move backwards
  /// between two scrapes. Pollers that difference counters across scrapes
  /// must compare `obs.snapshot_seq` first: a changed seq means ResetAll ran
  /// in between and the delta is meaningless (re-baseline instead).
  MetricsSnapshot Snapshot() const;

  /// Zeroes every registered metric (registrations are kept) and increments
  /// the reset sequence surfaced as the `obs.snapshot_seq` gauge. Race-free:
  /// concurrent writers may land increments before or after the reset, but
  /// values are never torn. See Snapshot() for the poller-side contract.
  void ResetAll();

  /// Completed ResetAll calls so far (the value of `obs.snapshot_seq`).
  int64_t snapshot_seq() const;

 private:
  MetricsRegistry() = default;

  inline static std::atomic<bool> enabled_{false};

  mutable Mutex mu_;
  /// Bumped by ResetAll *after* zeroing, surfaced as the synthetic gauge
  /// `obs.snapshot_seq` in every snapshot. Deliberately not a registered
  /// Gauge: it must survive the very reset it reports.
  int64_t snapshot_seq_ HTL_GUARDED_BY(mu_) = 0;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      HTL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      HTL_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      HTL_GUARDED_BY(mu_);
};

}  // namespace htl::obs

/// Adds `n` to the named process-wide counter when metrics are enabled.
/// Disarmed cost: one relaxed atomic load and a branch (no registration, no
/// lock). The counter pointer is resolved once per call site and cached.
#define HTL_OBS_COUNT(name, n)                                       \
  do {                                                               \
    if (::htl::obs::MetricsRegistry::Enabled()) {                    \
      static ::htl::obs::Counter* htl_obs_counter_ =                 \
          ::htl::obs::MetricsRegistry::Instance().GetCounter(name);  \
      htl_obs_counter_->Add(n);                                      \
    }                                                                \
  } while (0)

#endif  // HTL_OBS_METRICS_H_
