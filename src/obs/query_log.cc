#include "obs/query_log.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"

namespace htl::obs {

QueryLog::QueryLog(Options options) : options_(options) {
  HTL_CHECK(options_.capacity > 0) << "QueryLog needs a positive capacity";
  ring_.resize(options_.capacity);
}

bool QueryLog::ShouldRetain(const QueryLogRecord& record) const {
  if (options_.max_retained_profiles == 0) return false;
  if (options_.slow_threshold_us >= 0 &&
      record.total_us >= options_.slow_threshold_us) {
    return true;
  }
  return options_.sample_every > 0 &&
         record.id % static_cast<uint64_t>(options_.sample_every) == 0;
}

uint64_t QueryLog::Record(QueryLogRecord record, QueryProfile profile) {
  if (record.query.size() > options_.max_query_bytes) {
    record.query.resize(options_.max_query_bytes);
  }
  HTL_OBS_COUNT("obs.querylog.records", 1);

  MutexLock lock(&mu_);
  record.id = next_id_++;
  const bool retain = !profile.empty() && ShouldRetain(record);
  Entry& slot = ring_[(record.id - 1) % options_.capacity];
  if (slot.profile != nullptr) {
    // The overwritten record falls off the ring and takes its profile along.
    slot.profile.reset();
    --retained_;
    HTL_OBS_COUNT("obs.querylog.profiles_evicted", 1);
  }
  slot.record = std::move(record);
  if (retain) {
    if (retained_ >= options_.max_retained_profiles) {
      // Evict the oldest retained profile (its record stays in the ring).
      const uint64_t newest = next_id_ - 1;
      const uint64_t live = std::min<uint64_t>(newest, options_.capacity);
      for (uint64_t id = newest - live + 1; id < newest; ++id) {
        Entry& e = ring_[(id - 1) % options_.capacity];
        if (e.profile != nullptr) {
          e.profile.reset();
          --retained_;
          HTL_OBS_COUNT("obs.querylog.profiles_evicted", 1);
          break;
        }
      }
    }
    slot.profile = std::make_shared<const QueryProfile>(std::move(profile));
    ++retained_;
    HTL_OBS_COUNT("obs.querylog.profiles_retained", 1);
  }
  return slot.record.id;
}

std::vector<QueryLog::Entry> QueryLog::Tail(size_t n) const {
  MutexLock lock(&mu_);
  const uint64_t newest = next_id_ - 1;
  const uint64_t live = std::min<uint64_t>(newest, options_.capacity);
  const uint64_t take = std::min<uint64_t>(live, n);
  std::vector<Entry> out;
  out.reserve(take);
  for (uint64_t id = newest; id > newest - take; --id) {
    out.push_back(ring_[(id - 1) % options_.capacity]);
  }
  return out;
}

std::shared_ptr<const QueryProfile> QueryLog::ProfileFor(uint64_t id) const {
  MutexLock lock(&mu_);
  const uint64_t newest = next_id_ - 1;
  const uint64_t live = std::min<uint64_t>(newest, options_.capacity);
  if (id != 0) {
    if (id > newest || id + live <= newest) return nullptr;  // Fell off.
    const Entry& e = ring_[(id - 1) % options_.capacity];
    return e.record.id == id ? e.profile : nullptr;
  }
  for (uint64_t cand = newest; cand > newest - live; --cand) {
    const Entry& e = ring_[(cand - 1) % options_.capacity];
    if (e.profile != nullptr) return e.profile;
  }
  return nullptr;
}

namespace {

void AppendRecordJson(std::string* out, const QueryLog::Entry& entry) {
  const QueryLogRecord& r = entry.record;
  *out += StrCat("{\"id\": ", r.id, ", \"fingerprint\": ", r.fingerprint,
                 ", \"query\": \"");
  AppendJsonEscaped(out, r.query);
  *out += StrCat("\", \"kind\": ", static_cast<int>(r.kind),
                 ", \"wire_status\": ", static_cast<int>(r.wire_status),
                 ", \"degraded\": ", r.degraded ? "true" : "false",
                 ", \"partial\": ", r.partial ? "true" : "false",
                 ", \"use_cache\": ", r.use_cache ? "true" : "false",
                 ", \"cache_hit\": ", r.cache_hit ? "true" : "false",
                 ", \"formula_class\": \"");
  AppendJsonEscaped(out, r.formula_class);
  *out += StrCat("\", \"level\": ", r.level, ", \"k\": ", r.k,
                 ", \"deadline_ms\": ", r.deadline_ms,
                 ", \"decode_us\": ", r.decode_us,
                 ", \"execute_us\": ", r.execute_us,
                 ", \"encode_us\": ", r.encode_us,
                 ", \"total_us\": ", r.total_us, ", \"rows\": ", r.rows,
                 ", \"tables\": ", r.tables,
                 ", \"videos_evaluated\": ", r.videos_evaluated,
                 ", \"videos_failed\": ", r.videos_failed, ", \"has_profile\": ",
                 entry.profile != nullptr ? "true" : "false", "}");
}

}  // namespace

std::string QueryLog::ToJson(size_t n) const {
  const std::vector<Entry> tail = Tail(n);
  std::string out = StrCat("{\"count\": ", tail.size(), ", \"records\": [");
  for (size_t i = 0; i < tail.size(); ++i) {
    if (i != 0) out += ", ";
    AppendRecordJson(&out, tail[i]);
  }
  out += "]}";
  return out;
}

uint64_t QueryLog::total_recorded() const {
  MutexLock lock(&mu_);
  return next_id_ - 1;
}

size_t QueryLog::size() const {
  MutexLock lock(&mu_);
  return static_cast<size_t>(
      std::min<uint64_t>(next_id_ - 1, options_.capacity));
}

size_t QueryLog::retained_profiles() const {
  MutexLock lock(&mu_);
  return retained_;
}

}  // namespace htl::obs
