#include "obs/trace.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace htl::obs {

namespace {

thread_local QueryTrace* g_current_trace = nullptr;

}  // namespace

QueryTrace::SpanId QueryTrace::BeginSpan(std::string_view name) {
  Rec rec;
  rec.name = std::string(name);
  rec.parent = open_.empty() ? kNoSpan : open_.back();
  rec.start = std::chrono::steady_clock::now();
  const SpanId id = static_cast<SpanId>(recs_.size());
  recs_.push_back(std::move(rec));
  open_.push_back(id);
  return id;
}

void QueryTrace::EndSpan(SpanId id) {
  HTL_DCHECK(!open_.empty() && open_.back() == id)
      << "spans must close in LIFO order (id " << id << ")";
  if (open_.empty()) return;
  Rec& rec = recs_[static_cast<size_t>(open_.back())];
  rec.nanos = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - rec.start)
                  .count();
  open_.pop_back();
}

void QueryTrace::AddRows(SpanId id, int64_t n) {
  recs_[static_cast<size_t>(id)].stats.rows += n;
}

void QueryTrace::AddIntervals(SpanId id, int64_t n) {
  recs_[static_cast<size_t>(id)].stats.intervals += n;
}

void QueryTrace::AddTables(SpanId id, int64_t n) {
  recs_[static_cast<size_t>(id)].stats.tables += n;
}

void QueryTrace::SetUnit(SpanId id, int64_t unit) {
  recs_[static_cast<size_t>(id)].unit = unit;
}

void QueryTrace::SetNote(SpanId id, std::string note) {
  recs_[static_cast<size_t>(id)].note = std::move(note);
}

void QueryTrace::RecordFault(std::string_view point, const Status& status) {
  fault_trips_.push_back(
      QueryProfile::FaultTrip{std::string(point), status.ToString()});
  if (!open_.empty()) {
    Rec& rec = recs_[static_cast<size_t>(open_.back())];
    if (!rec.note.empty()) rec.note += "; ";
    rec.note += StrCat("fault:", point);
  }
}

void QueryTrace::Adopt(QueryProfile&& sub) {
  for (QueryProfile::FaultTrip& trip : sub.fault_trips) {
    fault_trips_.push_back(std::move(trip));
  }
  std::vector<QueryProfile::Node>& dest =
      open_.empty() ? adopted_roots_
                    : recs_[static_cast<size_t>(open_.back())].grafted;
  for (QueryProfile::Node& root : sub.roots) {
    dest.push_back(std::move(root));
  }
}

QueryProfile QueryTrace::Finish() {
  while (!open_.empty()) EndSpan(open_.back());

  // Rebuild the tree from the parent links, preserving creation order.
  // Children are attached depth-first from the back so indices into
  // partially built vectors stay valid: collect child ids per parent first.
  std::vector<std::vector<SpanId>> children(recs_.size());
  std::vector<SpanId> root_ids;
  for (size_t i = 0; i < recs_.size(); ++i) {
    const SpanId parent = recs_[i].parent;
    if (parent == kNoSpan) {
      root_ids.push_back(static_cast<SpanId>(i));
    } else {
      children[static_cast<size_t>(parent)].push_back(static_cast<SpanId>(i));
    }
  }

  QueryProfile profile;
  // Recursive assembly without actual recursion depth limits is fine here:
  // span nesting mirrors formula nesting, which the parsers already bound.
  struct Builder {
    std::vector<Rec>& recs;  // Non-const: adopted sub-trees are moved out.
    const std::vector<std::vector<SpanId>>& children;

    QueryProfile::Node Build(SpanId id) const {
      Rec& rec = recs[static_cast<size_t>(id)];
      QueryProfile::Node node;
      node.name = rec.name;
      node.nanos = rec.nanos;
      node.unit = rec.unit;
      node.stats = rec.stats;
      node.note = rec.note;
      for (SpanId child : children[static_cast<size_t>(id)]) {
        node.children.push_back(Build(child));
      }
      for (QueryProfile::Node& graft : rec.grafted) {
        node.children.push_back(std::move(graft));
      }
      return node;
    }
  };
  const Builder builder{recs_, children};
  profile.roots.reserve(root_ids.size() + adopted_roots_.size());
  for (SpanId root : root_ids) profile.roots.push_back(builder.Build(root));
  for (QueryProfile::Node& root : adopted_roots_) {
    profile.roots.push_back(std::move(root));
  }
  profile.fault_trips = std::move(fault_trips_);

  recs_.clear();
  fault_trips_.clear();
  adopted_roots_.clear();
  return profile;
}

QueryTrace* QueryTrace::Current() { return g_current_trace; }

ScopedTraceAttach::ScopedTraceAttach(QueryTrace* trace) : prev_(g_current_trace) {
  g_current_trace = trace;
}

ScopedTraceAttach::~ScopedTraceAttach() { g_current_trace = prev_; }

}  // namespace htl::obs
