#ifndef HTL_OBS_QUERY_LOG_H_
#define HTL_OBS_QUERY_LOG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/profile.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace htl::obs {

/// One wide event: everything the service learned about one request, flat in
/// a single record (DESIGN.md "Telemetry plane"). Aggregate metrics answer
/// "how much"; the wide event answers "which request" — filter by
/// fingerprint, formula class, or degraded flag without correlating streams.
///
/// Fields that require a trace (formula_class, cache_hit, rows, tables) are
/// zero/empty when the request ran untraced; they describe what the service
/// knew, not what it might have known.
struct QueryLogRecord {
  uint64_t id = 0;            // Assigned by QueryLog::Record; monotonic from 1.
  uint64_t fingerprint = 0;   // FNV-1a of the raw query text (htl/fingerprint).
  std::string query;          // Raw text, truncated to Options::max_query_bytes.
  std::string formula_class;  // stage.classify note, e.g. "type(2)" (traced only).
  uint8_t kind = 0;           // net::QueryKind byte (0xFF: request undecodable).
  uint8_t wire_status = 0;    // net::WireStatus byte of the response sent.
  bool degraded = false;      // Served under shed budgets (soft watermark).
  bool partial = false;       // Some videos failed/degraded (RetrievalReport).
  bool use_cache = false;     // Request asked for the query cache.
  bool cache_hit = false;     // cache.lookup span noted "hit" (traced only).
  int32_t level = 0;          // Hierarchy level queried.
  int64_t k = 0;              // Requested hit budget.
  int64_t deadline_ms = 0;    // Effective deadline applied to the ExecContext.
  int64_t decode_us = 0;      // Read + decode the request frame.
  int64_t execute_us = 0;     // Engine evaluation.
  int64_t encode_us = 0;      // Encode + write the response frame.
  int64_t total_us = 0;       // Whole ServeOneRequest, accept to last byte.
  int64_t rows = 0;           // Rows charged, summed over per-video spans.
  int64_t tables = 0;         // Tables charged, summed over per-video spans.
  int64_t videos_evaluated = 0;
  int64_t videos_failed = 0;
};

/// Bounded in-memory ring of wide-event records, plus threshold/sampled
/// retention of full QueryProfile trees for the interesting ones — the
/// backing store of the admin `slowlog` verb.
///
/// Every request appends one record (cheap: one lock, a few string copies).
/// The full profile — orders of magnitude bigger — is kept only when the
/// request was slow (total_us >= slow_threshold_us) or sampled (every
/// sample_every-th record), and at most max_retained_profiles at once, so
/// memory stays bounded no matter the traffic shape.
///
/// Thread-safe; every method may be called concurrently with every other.
class QueryLog {
 public:
  struct Options {
    /// Ring capacity in records; oldest records are overwritten.
    size_t capacity = 256;

    /// Retain the full profile for requests at least this slow. 0 retains
    /// every traced request's profile (tests); negative disables threshold
    /// retention entirely.
    int64_t slow_threshold_us = 100'000;

    /// Also retain every Nth record's profile regardless of latency, so the
    /// slowlog holds exemplars of healthy traffic too. 0 disables sampling.
    int64_t sample_every = 0;

    /// Upper bound on simultaneously retained profiles; retaining a new one
    /// beyond this evicts the oldest retained profile (its record stays).
    size_t max_retained_profiles = 16;

    /// Query text is truncated to this many bytes before storing.
    size_t max_query_bytes = 256;
  };

  /// One ring slot: the wide event, plus the full profile when retained.
  struct Entry {
    QueryLogRecord record;
    std::shared_ptr<const QueryProfile> profile;  // Null unless retained.
  };

  QueryLog() : QueryLog(Options{}) {}
  explicit QueryLog(Options options);

  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Appends one wide event and returns its assigned id. `profile` is the
  /// request's trace (empty when the request ran untraced); it is retained
  /// per the Options policy above, otherwise dropped.
  uint64_t Record(QueryLogRecord record, QueryProfile profile = QueryProfile{});

  /// The most recent min(n, size) entries, newest first. Retained profiles
  /// are shared, not copied — safe to hold across later Record calls.
  std::vector<Entry> Tail(size_t n) const;

  /// The retained profile for record `id`, or for the newest record with a
  /// retained profile when `id` is 0. Null when nothing matches.
  std::shared_ptr<const QueryProfile> ProfileFor(uint64_t id) const;

  /// JSON object {"count": N, "records": [...]} over the newest min(n, size)
  /// records, newest first. Each record carries "has_profile" so a slowlog
  /// consumer knows which ids the admin `trace` verb can export.
  std::string ToJson(size_t n) const;

  /// Records ever appended (== the id of the newest record).
  uint64_t total_recorded() const;
  /// Records currently held (<= capacity).
  size_t size() const;
  /// Profiles currently retained (<= max_retained_profiles).
  size_t retained_profiles() const;

  const Options& options() const { return options_; }

 private:
  bool ShouldRetain(const QueryLogRecord& record) const;

  const Options options_;

  mutable Mutex mu_;
  /// Fixed-capacity ring; slot for id `i` is (i - 1) % capacity.
  std::vector<Entry> ring_ HTL_GUARDED_BY(mu_);
  uint64_t next_id_ HTL_GUARDED_BY(mu_) = 1;
  size_t retained_ HTL_GUARDED_BY(mu_) = 0;
};

}  // namespace htl::obs

#endif  // HTL_OBS_QUERY_LOG_H_
