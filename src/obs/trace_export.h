#ifndef HTL_OBS_TRACE_EXPORT_H_
#define HTL_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <string>

#include "obs/profile.h"

namespace htl::obs {

/// Rendering knobs for ProfileToChromeTrace.
struct ChromeTraceOptions {
  int64_t pid = 1;  // Process id stamped on every event.
  int64_t tid = 1;  // Thread id stamped on every event.
};

/// Renders a QueryProfile as Chrome trace_event JSON — the format
/// chrome://tracing, Perfetto, and speedscope all open directly, which turns
/// the engine's EXPLAIN ANALYZE tree into a flame graph for free.
///
/// The profile stores durations, not timestamps, so timestamps are
/// synthesized: each root span starts where the previous one ended, and each
/// child starts at its parent's start offset by the durations of its earlier
/// siblings. That is exact for the engine's sequential stage spans and a
/// faithful nesting (if not a true timeline) for parallel per-video spans.
/// Every span becomes one complete ("ph":"X") event carrying its OpStats and
/// note as args; fault trips become instant ("ph":"i") events at the end of
/// the timeline.
///
/// Always returns a valid JSON object, even for an empty profile.
std::string ProfileToChromeTrace(const QueryProfile& profile,
                                 const ChromeTraceOptions& options = {});

}  // namespace htl::obs

#endif  // HTL_OBS_TRACE_EXPORT_H_
