#ifndef HTL_OBS_TRACE_H_
#define HTL_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/profile.h"
#include "util/status.h"

namespace htl::obs {

/// Collects one query's spans while it runs; Finish() converts the record
/// into an immutable QueryProfile tree. A trace is carried on the query's
/// ExecContext (engines read it through ExecContext::trace()), so the spans
/// share the exact call sites PR 2 threaded with HTL_CHECK_EXEC.
///
/// Cost model: code paths take a `QueryTrace*` that is null for unprofiled
/// queries — TraceSpan on a null trace is one pointer test in the
/// constructor and destructor, nothing else. The clock is steady_clock (the
/// same clock as util/timer.h and ExecContext deadlines), so span times can
/// never go negative.
///
/// Thread model: a trace is owned by the querying thread; it is not
/// thread-safe and deliberately carries no Mutex capability (DESIGN.md
/// "Lock discipline") — thread confinement, not locking, is its contract.
/// Parallel workers each write their own trace, stitched by Adopt() on the
/// owner's thread afterwards. Cross-thread aggregation belongs to the
/// MetricsRegistry.
class QueryTrace {
 public:
  using SpanId = int32_t;
  static constexpr SpanId kNoSpan = -1;

  QueryTrace() = default;
  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// Opens a span nested under the innermost open span. Prefer the RAII
  /// TraceSpan / HTL_OBS_SPAN over calling these directly.
  SpanId BeginSpan(std::string_view name);
  /// Closes `id`; spans must close in LIFO order (RAII guarantees it).
  void EndSpan(SpanId id);

  /// Accumulates operator stats / annotations on a specific span.
  void AddRows(SpanId id, int64_t n);
  void AddIntervals(SpanId id, int64_t n);
  void AddTables(SpanId id, int64_t n);
  void SetUnit(SpanId id, int64_t unit);
  void SetNote(SpanId id, std::string note);

  /// Records a fault-point trip (called by FaultRegistry::Hit via
  /// Current()); also annotates the innermost open span.
  void RecordFault(std::string_view point, const Status& status);

  /// Grafts a finished sub-trace (a worker's profile from a parallel query)
  /// under the innermost open span — the sub-profile's roots become children
  /// appended after the span's own child spans, and its fault trips join
  /// this trace's. With no span open the roots join this trace's roots.
  /// Call from the owning thread only, after the worker has finished.
  void Adopt(QueryProfile&& sub);

  int64_t num_spans() const { return static_cast<int64_t>(recs_.size()); }

  /// Closes any still-open spans and builds the profile tree. The trace is
  /// spent afterwards (start a fresh one per query).
  QueryProfile Finish();

  /// The trace attached to the calling thread (null when none) — the hook
  /// used by code that has no ExecContext in reach, e.g. FaultRegistry.
  static QueryTrace* Current();

 private:
  friend class ScopedTraceAttach;

  struct Rec {
    std::string name;
    SpanId parent = kNoSpan;
    std::chrono::steady_clock::time_point start;
    int64_t nanos = 0;
    int64_t unit = -1;
    OpStats stats;
    std::string note;
    /// Adopted sub-profiles; appended after built children in Finish().
    std::vector<QueryProfile::Node> grafted;
  };

  std::vector<Rec> recs_;
  std::vector<SpanId> open_;  // Stack of open span ids.
  std::vector<QueryProfile::FaultTrip> fault_trips_;
  std::vector<QueryProfile::Node> adopted_roots_;  // Adopt() with no open span.
};

/// RAII span over one stage or operator. Tolerates a null trace (no-op), so
/// hot kernels construct it unconditionally and pay one branch when the
/// query is not being profiled.
class TraceSpan {
 public:
  TraceSpan(QueryTrace* trace, std::string_view name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->BeginSpan(name);
  }
  ~TraceSpan() {
    if (trace_ != nullptr) trace_->EndSpan(id_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when a trace is attached — gate for stat computations that are
  /// themselves non-trivial (e.g. counting a table's intervals).
  bool active() const { return trace_ != nullptr; }

  void AddRows(int64_t n) {
    if (trace_ != nullptr) trace_->AddRows(id_, n);
  }
  void AddIntervals(int64_t n) {
    if (trace_ != nullptr) trace_->AddIntervals(id_, n);
  }
  void AddTables(int64_t n) {
    if (trace_ != nullptr) trace_->AddTables(id_, n);
  }
  void SetUnit(int64_t unit) {
    if (trace_ != nullptr) trace_->SetUnit(id_, unit);
  }
  void SetNote(std::string note) {
    if (trace_ != nullptr) trace_->SetNote(id_, std::move(note));
  }

 private:
  QueryTrace* trace_;
  QueryTrace::SpanId id_ = QueryTrace::kNoSpan;
};

/// Attaches `trace` as the calling thread's current trace for its lifetime
/// (restoring the previous one on destruction), so fault points fired
/// anywhere under the scope land in the trace. Null is allowed (no-op
/// attach, used to mute fault recording in a nested scope).
class ScopedTraceAttach {
 public:
  explicit ScopedTraceAttach(QueryTrace* trace);
  ~ScopedTraceAttach();
  ScopedTraceAttach(const ScopedTraceAttach&) = delete;
  ScopedTraceAttach& operator=(const ScopedTraceAttach&) = delete;

 private:
  QueryTrace* prev_;
};

}  // namespace htl::obs

/// The sanctioned operator-span macro for hot-path kernels (tools/lint.py
/// rule obs-operator-span): declares an RAII span named `var` on `trace_expr`
/// (which may be null). Bare WallTimer use in src/sim/ and src/engine/ is
/// forbidden — spans carry the timing so profiles and benches agree.
#define HTL_OBS_SPAN(var, trace_expr, name) \
  ::htl::obs::TraceSpan var((trace_expr), (name))

#endif  // HTL_OBS_TRACE_H_
