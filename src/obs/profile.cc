#include "obs/profile.h"

#include <cstdio>

#include "util/string_util.h"

namespace htl::obs {

namespace {

const QueryProfile::Node* FindIn(const std::vector<QueryProfile::Node>& nodes,
                                 std::string_view name) {
  for (const QueryProfile::Node& n : nodes) {
    if (n.name == name) return &n;
    if (const QueryProfile::Node* hit = FindIn(n.children, name)) return hit;
  }
  return nullptr;
}

std::string FormatMillis(int64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%9.3f ms", static_cast<double>(nanos) * 1e-6);
  return buf;
}

void Render(const QueryProfile::Node& node, int depth, std::string* out) {
  std::string label(static_cast<size_t>(depth) * 2, ' ');
  label += node.name;
  if (node.unit >= 0) label += StrCat(" #", node.unit);
  if (label.size() < 28) label.resize(28, ' ');
  *out += StrCat(label, " ", FormatMillis(node.nanos));
  if (node.stats.rows != 0) *out += StrCat("  rows=", node.stats.rows);
  if (node.stats.intervals != 0) *out += StrCat("  intervals=", node.stats.intervals);
  if (node.stats.tables != 0) *out += StrCat("  tables=", node.stats.tables);
  if (!node.note.empty()) *out += StrCat("  [", node.note, "]");
  *out += "\n";
  for (const QueryProfile::Node& child : node.children) {
    Render(child, depth + 1, out);
  }
}

}  // namespace

int64_t QueryProfile::TotalNanos() const {
  int64_t total = 0;
  for (const Node& n : roots) total += n.nanos;
  return total;
}

const QueryProfile::Node* QueryProfile::Find(std::string_view name) const {
  return FindIn(roots, name);
}

std::string QueryProfile::ToText() const {
  std::string out = StrCat("query profile (total", FormatMillis(TotalNanos()), ")\n");
  for (const Node& n : roots) Render(n, 1, &out);
  for (const FaultTrip& trip : fault_trips) {
    out += StrCat("  fault trip: ", trip.point, " -> ", trip.status, "\n");
  }
  return out;
}

}  // namespace htl::obs
