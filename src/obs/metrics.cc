#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"
#include "util/mutex.h"
#include "util/string_util.h"

namespace htl::obs {

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  HTL_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bounds must be ascending";
}

void Histogram::Observe(int64_t value) {
  // First bound >= value; everything above the last bound overflows into
  // the extra bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.bounds = bounds_;
  s.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) s.buckets.push_back(b.load(std::memory_order_relaxed));
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::vector<int64_t> Histogram::ExponentialBounds(int64_t start, double factor,
                                                  int count) {
  HTL_CHECK(start > 0 && factor > 1.0 && count > 0);
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<size_t>(count));
  double bound = static_cast<double>(start);
  for (int i = 0; i < count; ++i) {
    int64_t b = static_cast<int64_t>(bound);
    if (!bounds.empty() && b <= bounds.back()) b = bounds.back() + 1;
    bounds.push_back(b);
    bound *= factor;
  }
  return bounds;
}

namespace {

void AppendJsonScalarMap(std::string* out, const char* key,
                         const std::vector<std::pair<std::string, int64_t>>& rows) {
  *out += StrCat("\"", key, "\": {");
  for (size_t i = 0; i < rows.size(); ++i) {
    *out += StrCat(i == 0 ? "" : ", ", "\"", rows[i].first, "\": ", rows[i].second);
  }
  *out += "}";
}

}  // namespace

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const CounterRow& c : counters) {
    out += StrCat("counter   ", c.name, " = ", c.value, "\n");
  }
  for (const GaugeRow& g : gauges) {
    out += StrCat("gauge     ", g.name, " = ", g.value, "\n");
  }
  for (const HistogramRow& h : histograms) {
    out += StrCat("histogram ", h.name, " count=", h.hist.count, " sum=", h.hist.sum);
    for (size_t i = 0; i < h.hist.buckets.size(); ++i) {
      if (h.hist.buckets[i] == 0) continue;
      if (i < h.hist.bounds.size()) {
        out += StrCat(" le", h.hist.bounds[i], "=", h.hist.buckets[i]);
      } else {
        out += StrCat(" overflow=", h.hist.buckets[i]);
      }
    }
    out += "\n";
  }
  return out;
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{";
  std::vector<std::pair<std::string, int64_t>> rows;
  rows.reserve(counters.size());
  for (const CounterRow& c : counters) rows.emplace_back(c.name, c.value);
  AppendJsonScalarMap(&out, "counters", rows);
  rows.clear();
  for (const GaugeRow& g : gauges) rows.emplace_back(g.name, g.value);
  out += ", ";
  AppendJsonScalarMap(&out, "gauges", rows);
  out += ", \"histograms\": {";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const HistogramRow& h = histograms[i];
    out += StrCat(i == 0 ? "" : ", ", "\"", h.name, "\": {\"count\": ", h.hist.count,
                  ", \"sum\": ", h.hist.sum, ", \"bounds\": [");
    for (size_t j = 0; j < h.hist.bounds.size(); ++j) {
      out += StrCat(j == 0 ? "" : ", ", h.hist.bounds[j]);
    }
    out += "], \"buckets\": [";
    for (size_t j = 0; j < h.hist.buckets.size(); ++j) {
      out += StrCat(j == 0 ? "" : ", ", h.hist.buckets[j]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsRegistry& MetricsRegistry::Instance() {
  static MetricsRegistry* registry = new MetricsRegistry();  // Leaked singleton.
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<int64_t> bounds) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back(MetricsSnapshot::CounterRow{name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size() + 1);
  // The synthetic reset-sequence gauge rides every snapshot in sorted
  // position, so pollers can detect a ResetAll between two scrapes.
  bool seq_emitted = false;
  for (const auto& [name, g] : gauges_) {
    if (!seq_emitted && name > kSnapshotSeqName) {
      snap.gauges.push_back(
          MetricsSnapshot::GaugeRow{std::string(kSnapshotSeqName), snapshot_seq_});
      seq_emitted = true;
    }
    snap.gauges.push_back(MetricsSnapshot::GaugeRow{name, g->Value()});
  }
  if (!seq_emitted) {
    snap.gauges.push_back(
        MetricsSnapshot::GaugeRow{std::string(kSnapshotSeqName), snapshot_seq_});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(MetricsSnapshot::HistogramRow{name, h->Snap()});
  }
  return snap;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(&mu_);
  for (const auto& [name, c] : counters_) c->Reset();
  for (const auto& [name, g] : gauges_) g->Reset();
  for (const auto& [name, h] : histograms_) h->Reset();
  // Bumped after the zeroing, under the same lock: a snapshot serialized
  // behind this reset sees the new seq with the zeroed values.
  ++snapshot_seq_;
}

int64_t MetricsRegistry::snapshot_seq() const {
  MutexLock lock(&mu_);
  return snapshot_seq_;
}

}  // namespace htl::obs
