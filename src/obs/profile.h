#ifndef HTL_OBS_PROFILE_H_
#define HTL_OBS_PROFILE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace htl::obs {

/// Per-operator counters accumulated inside one trace span: where rows and
/// intervals go during a query (the per-operator cost model of the
/// sequence-retrieval follow-up work — list merges, value-table scans).
struct OpStats {
  int64_t rows = 0;       // Rows processed / charged against the budget.
  int64_t intervals = 0;  // Similarity-list entries (interval runs) produced.
  int64_t tables = 0;     // Intermediate tables materialized.

  bool empty() const { return rows == 0 && intervals == 0 && tables == 0; }
};

/// The finished, immutable form of a QueryTrace: a tree of timed spans over
/// the retrieval stages (parse -> bind -> classify -> per-video execute) and
/// the per-operator kernels, plus every fault point that fired during the
/// query. Attached to RetrievalReport by the Retriever's *Profiled entry
/// points and rendered by ToText() — the EXPLAIN ANALYZE of this engine.
struct QueryProfile {
  struct Node {
    std::string name;     // Span name, e.g. "stage.execute", "op.until_join".
    int64_t nanos = 0;    // Wall time (steady clock) spent in the span.
    int64_t unit = -1;    // Work-unit id (video id on per-video spans).
    OpStats stats;
    std::string note;     // Annotation: formula class, failure status, ...
    std::vector<Node> children;
  };

  /// One fault point that fired while the trace was attached (injected via
  /// FaultRegistry or a real failure routed through a fault-point seam).
  struct FaultTrip {
    std::string point;   // Fault-point name, e.g. "picture.query".
    std::string status;  // The Status it produced.
  };

  std::vector<Node> roots;
  std::vector<FaultTrip> fault_trips;

  bool empty() const { return roots.empty() && fault_trips.empty(); }

  /// Sum of the root spans' wall times.
  int64_t TotalNanos() const;

  /// Depth-first search for the first span with `name` (tests, tooling).
  const Node* Find(std::string_view name) const;

  /// Indented tree rendering with per-span timings and operator counts,
  /// ending with the fault trips (if any). Suitable for terminal output.
  std::string ToText() const;
};

}  // namespace htl::obs

#endif  // HTL_OBS_PROFILE_H_
