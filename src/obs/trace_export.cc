#include "obs/trace_export.h"

#include <string_view>

#include "util/string_util.h"

namespace htl::obs {

namespace {

/// Microseconds with sub-microsecond remainder, the unit of trace_event
/// "ts"/"dur" fields.
std::string NanosAsMicros(int64_t nanos) {
  return FormatFixed(static_cast<double>(nanos) / 1000.0, 3);
}

struct Emitter {
  std::string* out;
  const ChromeTraceOptions& options;
  bool first = true;

  void BeginEvent() {
    if (!first) *out += ",\n";
    first = false;
  }

  void EmitSpan(const QueryProfile::Node& node, int64_t start_nanos) {
    BeginEvent();
    *out += "{\"name\": \"";
    AppendJsonEscaped(out, node.name);
    *out += StrCat("\", \"cat\": \"htl\", \"ph\": \"X\", \"ts\": ",
                   NanosAsMicros(start_nanos),
                   ", \"dur\": ", NanosAsMicros(node.nanos),
                   ", \"pid\": ", options.pid, ", \"tid\": ", options.tid);
    const bool has_args = node.unit >= 0 || !node.stats.empty() ||
                          !node.note.empty();
    if (has_args) {
      *out += ", \"args\": {";
      bool first_arg = true;
      const auto arg = [&](std::string_view key, auto&& value) {
        *out += StrCat(first_arg ? "" : ", ", "\"", key, "\": ", value);
        first_arg = false;
      };
      if (node.unit >= 0) arg("unit", node.unit);
      if (node.stats.rows != 0) arg("rows", node.stats.rows);
      if (node.stats.intervals != 0) arg("intervals", node.stats.intervals);
      if (node.stats.tables != 0) arg("tables", node.stats.tables);
      if (!node.note.empty()) {
        arg("note", StrCat("\"", JsonEscaped(node.note), "\""));
      }
      *out += "}";
    }
    *out += "}";
    // Children stack inside the parent: each starts where the durations of
    // its earlier siblings end.
    int64_t child_start = start_nanos;
    for (const QueryProfile::Node& child : node.children) {
      EmitSpan(child, child_start);
      child_start += child.nanos;
    }
  }

  void EmitFault(const QueryProfile::FaultTrip& trip, int64_t at_nanos) {
    BeginEvent();
    *out += "{\"name\": \"fault: ";
    AppendJsonEscaped(out, trip.point);
    *out += StrCat("\", \"cat\": \"htl.fault\", \"ph\": \"i\", \"s\": \"t\"",
                   ", \"ts\": ", NanosAsMicros(at_nanos),
                   ", \"pid\": ", options.pid, ", \"tid\": ", options.tid,
                   ", \"args\": {\"status\": \"", JsonEscaped(trip.status),
                   "\"}}");
  }
};

}  // namespace

std::string ProfileToChromeTrace(const QueryProfile& profile,
                                 const ChromeTraceOptions& options) {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  Emitter emitter{&out, options};
  int64_t start = 0;
  for (const QueryProfile::Node& root : profile.roots) {
    emitter.EmitSpan(root, start);
    start += root.nanos;
  }
  // `start` is now the synthesized end of the timeline; pin the fault
  // instants there so they are visible next to the spans that tripped them.
  for (const QueryProfile::FaultTrip& trip : profile.fault_trips) {
    emitter.EmitFault(trip, start);
  }
  out += "\n]}";
  return out;
}

}  // namespace htl::obs
