#ifndef HTL_STORAGE_SERIALIZATION_H_
#define HTL_STORAGE_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "model/video.h"
#include "sim/sim_list.h"
#include "util/result.h"

namespace htl {

/// Plain-text serialization for the two artifacts the paper stores on
/// secondary storage: similarity lists (the tables fed between the picture
/// retrieval system and the video retrieval system, section 4) and the
/// meta-data database itself (figure 1). The format is line-oriented and
/// versioned; readers validate structure and report precise errors.
///
/// Similarity list format:
///   htl-simlist 1
///   max <float>
///   entry <beg> <end> <actual>     # repeated, sorted
///   end
///
/// Video format:
///   htl-video 1
///   levels <n>
///   levelname <name> <level>       # repeated
///   segment <level> <id> <num_children>
///   attr <name> <value>            # repeated, owned by last segment/object
///   object <id>
///   fact <name> <arg>...
///   end
///
/// Values encode as: i<int>, f<float>, s<escaped string> (\\ and \n escaped).

/// Writes/parses one similarity list.
void WriteSimilarityList(const SimilarityList& list, std::ostream& out);
Result<SimilarityList> ReadSimilarityList(std::istream& in);

/// Writes/parses one video tree with all its meta-data.
void WriteVideo(const VideoTree& video, std::ostream& out);
Result<VideoTree> ReadVideo(std::istream& in);

/// Writes/parses a whole store (all videos, concatenated with a count
/// header):
///   htl-store 1
///   videos <n>
///   <n> video blocks>
void WriteStore(const MetadataStore& store, std::ostream& out);
Result<MetadataStore> ReadStore(std::istream& in);

/// File-level helpers.
Status SaveSimilarityList(const SimilarityList& list, const std::string& path);
Result<SimilarityList> LoadSimilarityList(const std::string& path);
Status SaveVideo(const VideoTree& video, const std::string& path);
Result<VideoTree> LoadVideo(const std::string& path);
Status SaveStore(const MetadataStore& store, const std::string& path);
Result<MetadataStore> LoadStore(const std::string& path);

}  // namespace htl

#endif  // HTL_STORAGE_SERIALIZATION_H_
