#include "storage/serialization.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "model/video_builder.h"
#include "util/parse.h"
#include "util/string_util.h"

namespace htl {

namespace {

// Tokens never contain whitespace: strings escape backslash, newline and
// space.
std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case ' ':
        out += "\\_";
        break;
      default:
        out += c;
    }
  }
  return out;
}

Result<std::string> UnescapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\') {
      out += s[i];
      continue;
    }
    if (i + 1 >= s.size()) return Status::ParseError("dangling escape");
    switch (s[++i]) {
      case '\\':
        out += '\\';
        break;
      case 'n':
        out += '\n';
        break;
      case '_':
        out += ' ';
        break;
      default:
        return Status::ParseError(StrCat("bad escape \\", std::string(1, s[i])));
    }
  }
  return out;
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

std::string EncodeValue(const AttrValue& v) {
  if (v.is_null()) return "0";
  if (v.is_int()) return StrCat("i", v.AsInt());
  if (v.is_double()) return StrCat("f", FormatDouble(v.AsDouble()));
  return StrCat("s", EscapeString(v.AsString()));
}

Result<AttrValue> DecodeValue(const std::string& token) {
  if (token.empty()) return Status::ParseError("empty value token");
  const std::string body = token.substr(1);
  switch (token[0]) {
    case '0':
      return AttrValue();
    case 'i': {
      int64_t i = 0;
      if (!ParseInt64(body, &i)) {
        return Status::ParseError(StrCat("bad integer '", body, "'"));
      }
      return AttrValue(i);
    }
    case 'f': {
      double d = 0;
      if (!ParseDouble(body, &d)) {
        return Status::ParseError(StrCat("bad float '", body, "'"));
      }
      return AttrValue(d);
    }
    case 's': {
      HTL_ASSIGN_OR_RETURN(std::string s, UnescapeString(body));
      return AttrValue(std::move(s));
    }
    default:
      return Status::ParseError(StrCat("bad value token '", token, "'"));
  }
}

// Splits one line into whitespace-separated tokens.
std::vector<std::string> Tokens(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

Status ParseErrorAt(int line_no, const std::string& msg) {
  return Status::ParseError(StrCat("line ", line_no, ": ", msg));
}

}  // namespace

void WriteSimilarityList(const SimilarityList& list, std::ostream& out) {
  out << "htl-simlist 1\n";
  out << "max " << FormatDouble(list.max()) << "\n";
  for (const SimEntry& e : list.entries()) {
    out << "entry " << e.range.begin << " " << e.range.end << " "
        << FormatDouble(e.actual) << "\n";
  }
  out << "end\n";
}

Result<SimilarityList> ReadSimilarityList(std::istream& in) {
  std::string line;
  int line_no = 0;
  auto next = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!StripWhitespace(line).empty()) return true;
    }
    return false;
  };
  if (!next() || Tokens(line) != std::vector<std::string>{"htl-simlist", "1"}) {
    return ParseErrorAt(line_no, "expected header 'htl-simlist 1'");
  }
  double max = 0;
  std::vector<SimEntry> entries;
  bool have_max = false;
  while (next()) {
    std::vector<std::string> toks = Tokens(line);
    if (toks[0] == "end") {
      if (!have_max) return ParseErrorAt(line_no, "missing max line");
      return SimilarityList::FromEntries(std::move(entries), max);
    }
    if (toks[0] == "max" && toks.size() == 2) {
      if (!ParseDouble(toks[1], &max)) return ParseErrorAt(line_no, "bad max");
      have_max = true;
      continue;
    }
    if (toks[0] == "entry" && toks.size() == 4) {
      SimEntry e;
      if (!ParseInt64(toks[1], &e.range.begin) || !ParseInt64(toks[2], &e.range.end) ||
          !ParseDouble(toks[3], &e.actual)) {
        return ParseErrorAt(line_no, "bad entry");
      }
      entries.push_back(e);
      continue;
    }
    return ParseErrorAt(line_no, StrCat("unexpected directive '", toks[0], "'"));
  }
  return ParseErrorAt(line_no, "missing 'end'");
}

void WriteVideo(const VideoTree& video, std::ostream& out) {
  out << "htl-video 1\n";
  out << "levels " << video.num_levels() << "\n";
  for (const auto& [name, level] : video.level_names()) {
    out << "levelname " << EscapeString(name) << " " << level << "\n";
  }
  for (int level = 1; level <= video.num_levels(); ++level) {
    for (SegmentId id = 1; id <= video.NumSegments(level); ++id) {
      const Interval kids = video.Children(level, id);
      out << "segment " << level << " " << id << " " << kids.size() << "\n";
      const SegmentMeta& meta = video.Meta(level, id);
      for (const auto& [name, value] : meta.attributes()) {
        out << "attr " << EscapeString(name) << " " << EncodeValue(value) << "\n";
      }
      for (const ObjectAppearance& obj : meta.objects()) {
        out << "object " << obj.id << "\n";
        for (const auto& [name, value] : obj.attributes) {
          out << "attr " << EscapeString(name) << " " << EncodeValue(value) << "\n";
        }
      }
      for (const PredicateFact& fact : meta.facts()) {
        out << "fact " << EscapeString(fact.name);
        for (ObjectId arg : fact.args) out << " " << arg;
        out << "\n";
      }
    }
  }
  out << "end\n";
}

Result<VideoTree> ReadVideo(std::istream& in) {
  std::string line;
  int line_no = 0;
  auto next = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!StripWhitespace(line).empty()) return true;
    }
    return false;
  };
  if (!next() || Tokens(line) != std::vector<std::string>{"htl-video", "1"}) {
    return ParseErrorAt(line_no, "expected header 'htl-video 1'");
  }
  if (!next()) return ParseErrorAt(line_no, "missing levels line");
  std::vector<std::string> toks = Tokens(line);
  if (toks.size() != 2 || toks[0] != "levels") {
    return ParseErrorAt(line_no, "expected 'levels <n>'");
  }
  int32_t num_levels = 0;
  if (!ParseInt32(toks[1], &num_levels)) {
    return ParseErrorAt(line_no, "bad level count");
  }
  if (num_levels < 1) return ParseErrorAt(line_no, "level count must be >= 1");

  VideoBuilder builder;
  // Handles per (level, id); filled as segment lines declare children.
  std::vector<std::vector<VideoBuilder::Handle>> handles(
      static_cast<size_t>(num_levels) + 1);
  handles[1] = {builder.root()};

  SegmentMeta* current_meta = nullptr;
  ObjectAppearance* current_object = nullptr;
  std::vector<std::pair<std::string, int>> level_names;
  bool saw_end = false;

  while (next()) {
    toks = Tokens(line);
    const std::string& dir = toks[0];
    if (dir == "end") {
      saw_end = true;
      break;
    }
    if (dir == "levelname") {
      if (toks.size() != 3) return ParseErrorAt(line_no, "bad levelname");
      HTL_ASSIGN_OR_RETURN(std::string name, UnescapeString(toks[1]));
      int32_t name_level = 0;
      if (!ParseInt32(toks[2], &name_level)) {
        return ParseErrorAt(line_no, "bad levelname level");
      }
      level_names.emplace_back(std::move(name), name_level);
      continue;
    }
    if (dir == "segment") {
      if (toks.size() != 4) return ParseErrorAt(line_no, "bad segment line");
      int32_t level = 0;
      SegmentId id = 0;
      int64_t kids = 0;
      if (!ParseInt32(toks[1], &level) || !ParseInt64(toks[2], &id) ||
          !ParseInt64(toks[3], &kids)) {
        return ParseErrorAt(line_no, "bad segment numbers");
      }
      if (level < 1 || level > num_levels) {
        return ParseErrorAt(line_no, StrCat("segment level ", level, " out of range"));
      }
      if (level == 1 && id != 1) {
        return ParseErrorAt(line_no, "level 1 has exactly one segment (the root)");
      }
      auto& level_handles = handles[static_cast<size_t>(level)];
      // Segments arrive in level order 1..N, and a segment's handle exists
      // only once its parent declared its children.
      if (id < 1 || static_cast<size_t>(id) > level_handles.size()) {
        return ParseErrorAt(
            line_no, StrCat("segment (", level, ",", id,
                            ") declared before its parent or out of order"));
      }
      VideoBuilder::Handle h = level_handles[static_cast<size_t>(id - 1)];
      if (kids > 0) {
        if (level + 1 > num_levels) {
          return ParseErrorAt(line_no, "children below the last level");
        }
        for (int64_t k = 0; k < kids; ++k) {
          handles[static_cast<size_t>(level + 1)].push_back(builder.AddChild(h));
        }
      }
      current_meta = &builder.Meta(h);
      current_object = nullptr;
      continue;
    }
    if (current_meta == nullptr) {
      return ParseErrorAt(line_no, StrCat("'", dir, "' before any segment"));
    }
    if (dir == "object") {
      if (toks.size() != 2) return ParseErrorAt(line_no, "bad object line");
      ObjectAppearance obj;
      if (!ParseInt64(toks[1], &obj.id)) {
        return ParseErrorAt(line_no, "bad object id");
      }
      const ObjectId obj_id = obj.id;
      current_meta->AddObject(std::move(obj));
      // AddObject keeps objects sorted; find it again for attribute lines.
      current_object =
          const_cast<ObjectAppearance*>(current_meta->FindObject(obj_id));
      continue;
    }
    if (dir == "attr") {
      if (toks.size() != 3) return ParseErrorAt(line_no, "bad attr line");
      HTL_ASSIGN_OR_RETURN(std::string name, UnescapeString(toks[1]));
      HTL_ASSIGN_OR_RETURN(AttrValue value, DecodeValue(toks[2]));
      if (current_object != nullptr) {
        current_object->attributes[name] = std::move(value);
      } else {
        current_meta->SetAttribute(name, std::move(value));
      }
      continue;
    }
    if (dir == "fact") {
      if (toks.size() < 2) return ParseErrorAt(line_no, "bad fact line");
      PredicateFact fact;
      HTL_ASSIGN_OR_RETURN(fact.name, UnescapeString(toks[1]));
      for (size_t i = 2; i < toks.size(); ++i) {
        ObjectId arg = 0;
        if (!ParseInt64(toks[i], &arg)) {
          return ParseErrorAt(line_no, "bad fact argument");
        }
        fact.args.push_back(arg);
      }
      current_meta->AddFact(std::move(fact));
      continue;
    }
    return ParseErrorAt(line_no, StrCat("unknown directive '", dir, "'"));
  }
  if (!saw_end) return ParseErrorAt(line_no, "missing 'end'");
  HTL_ASSIGN_OR_RETURN(VideoTree video, std::move(builder).Build());
  if (video.num_levels() != num_levels) {
    return Status::ParseError(
        StrCat("declared ", num_levels, " levels but reconstructed ",
               video.num_levels()));
  }
  for (auto& [name, level] : level_names) {
    HTL_RETURN_IF_ERROR(video.NameLevel(name, level));
  }
  return video;
}

void WriteStore(const MetadataStore& store, std::ostream& out) {
  out << "htl-store 1\n";
  out << "videos " << store.num_videos() << "\n";
  for (MetadataStore::VideoId v = 1; v <= store.num_videos(); ++v) {
    WriteVideo(store.Video(v), out);
  }
}

Result<MetadataStore> ReadStore(std::istream& in) {
  std::string line;
  int line_no = 0;
  auto next = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!StripWhitespace(line).empty()) return true;
    }
    return false;
  };
  if (!next() || Tokens(line) != std::vector<std::string>{"htl-store", "1"}) {
    return ParseErrorAt(line_no, "expected header 'htl-store 1'");
  }
  if (!next()) return ParseErrorAt(line_no, "missing videos line");
  std::vector<std::string> toks = Tokens(line);
  if (toks.size() != 2 || toks[0] != "videos") {
    return ParseErrorAt(line_no, "expected 'videos <n>'");
  }
  int64_t count = 0;
  if (!ParseInt64(toks[1], &count)) {
    return ParseErrorAt(line_no, "bad video count");
  }
  if (count < 0) return ParseErrorAt(line_no, "negative video count");
  MetadataStore store;
  for (int64_t i = 0; i < count; ++i) {
    HTL_ASSIGN_OR_RETURN(VideoTree video, ReadVideo(in));
    store.AddVideo(std::move(video));
  }
  return store;
}

Status SaveSimilarityList(const SimilarityList& list, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal(StrCat("cannot open '", path, "' for writing"));
  WriteSimilarityList(list, out);
  out.flush();
  if (!out) return Status::Internal(StrCat("write to '", path, "' failed"));
  return Status::OK();
}

Result<SimilarityList> LoadSimilarityList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open '", path, "'"));
  return ReadSimilarityList(in);
}

Status SaveVideo(const VideoTree& video, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal(StrCat("cannot open '", path, "' for writing"));
  WriteVideo(video, out);
  out.flush();
  if (!out) return Status::Internal(StrCat("write to '", path, "' failed"));
  return Status::OK();
}

Result<VideoTree> LoadVideo(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open '", path, "'"));
  return ReadVideo(in);
}

Status SaveStore(const MetadataStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal(StrCat("cannot open '", path, "' for writing"));
  WriteStore(store, out);
  out.flush();
  if (!out) return Status::Internal(StrCat("write to '", path, "' failed"));
  return Status::OK();
}

Result<MetadataStore> LoadStore(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound(StrCat("cannot open '", path, "'"));
  return ReadStore(in);
}

}  // namespace htl
