#include "model/predicate_fact.h"

#include "util/string_util.h"

namespace htl {

std::string PredicateFact::ToString() const {
  return StrCat(name, "(", StrJoin(args, ", "), ")");
}

}  // namespace htl
