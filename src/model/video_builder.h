#ifndef HTL_MODEL_VIDEO_BUILDER_H_
#define HTL_MODEL_VIDEO_BUILDER_H_

#include <string>
#include <vector>

#include "model/video.h"
#include "util/result.h"

namespace htl {

/// Incrementally builds an arbitrary-depth VideoTree. Children keep their
/// insertion order (the temporal order of the decomposition). Build()
/// verifies the paper's structural assumption that all leaves lie at the
/// same depth.
///
/// Example:
///   VideoBuilder b;
///   b.Meta(b.root()).SetAttribute("title", "Gulf War");
///   auto plot = b.AddChild(b.root());
///   auto scene = b.AddChild(plot);
///   b.AddChild(scene);   // a shot
///   HTL_ASSIGN_OR_RETURN(VideoTree video, std::move(b).Build());
class VideoBuilder {
 public:
  /// Opaque handle to a node under construction.
  using Handle = size_t;

  VideoBuilder();

  /// The root node (the whole video).
  Handle root() const { return 0; }

  /// Appends a child under `parent` and returns its handle.
  Handle AddChild(Handle parent);

  /// Appends `n` children under `parent`; returns the handle of the first.
  Handle AddChildren(Handle parent, int64_t n);

  /// Mutable meta-data of a node under construction.
  SegmentMeta& Meta(Handle node);

  /// Registers a level name (applied to the final tree by Build).
  void NameLevel(const std::string& name, int level);

  /// Validates (all leaves at equal depth, level names in range) and
  /// produces the tree. The builder is consumed.
  Result<VideoTree> Build() &&;

 private:
  struct ProtoNode {
    Handle parent = 0;
    std::vector<Handle> children;
    SegmentMeta meta;
  };

  std::vector<ProtoNode> nodes_;
  std::vector<std::pair<std::string, int>> level_names_;
};

}  // namespace htl

#endif  // HTL_MODEL_VIDEO_BUILDER_H_
