#ifndef HTL_MODEL_SEGMENT_H_
#define HTL_MODEL_SEGMENT_H_

#include <map>
#include <string>
#include <vector>

#include "model/object.h"
#include "model/predicate_fact.h"
#include "model/value.h"

namespace htl {

/// Meta-data attached to one video segment (any node of the hierarchy:
/// the whole video, a sub-plot, a scene, a shot, or a frame). Contains
/// segment-level attributes (e.g. type='western', title='...'), the objects
/// present in the segment with their per-segment attribute values, and
/// ground predicate facts over those objects.
class SegmentMeta {
 public:
  SegmentMeta() = default;

  /// Sets a segment-level attribute (e.g. "type" -> "western").
  void SetAttribute(const std::string& name, AttrValue value) {
    attributes_[name] = std::move(value);
  }

  /// Segment-level attribute value, or null when absent.
  AttrValue Attribute(const std::string& name) const {
    auto it = attributes_.find(name);
    return it == attributes_.end() ? AttrValue() : it->second;
  }

  const std::map<std::string, AttrValue>& attributes() const { return attributes_; }

  /// Records that `object` appears in this segment. Re-adding an id merges
  /// (later attribute values win).
  void AddObject(ObjectAppearance object);

  /// True when the object id appears in this segment (predicate present(x)).
  bool HasObject(ObjectId id) const;

  /// The appearance record for `id`, or nullptr.
  const ObjectAppearance* FindObject(ObjectId id) const;

  const std::vector<ObjectAppearance>& objects() const { return objects_; }

  /// Adds a ground predicate fact; duplicates are ignored.
  void AddFact(PredicateFact fact);

  /// True when the exact ground fact holds in this segment.
  bool HasFact(const PredicateFact& fact) const;

  const std::vector<PredicateFact>& facts() const { return facts_; }

 private:
  std::map<std::string, AttrValue> attributes_;
  std::vector<ObjectAppearance> objects_;  // Sorted by id.
  std::vector<PredicateFact> facts_;       // Sorted.
};

}  // namespace htl

#endif  // HTL_MODEL_SEGMENT_H_
