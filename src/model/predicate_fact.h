#ifndef HTL_MODEL_PREDICATE_FACT_H_
#define HTL_MODEL_PREDICATE_FACT_H_

#include <string>
#include <vector>

#include "model/object.h"

namespace htl {

/// A ground k-ary predicate fact recorded in a segment's meta-data, e.g.
/// holds_gun(7), fires_at(7, 12), left_of(3, 4). These are the facts the
/// video analyzer (or a human annotator) extracts; atomic HTL predicates
/// P(e1, ..., ek) are matched against them.
struct PredicateFact {
  std::string name;
  std::vector<ObjectId> args;

  friend bool operator==(const PredicateFact& a, const PredicateFact& b) {
    return a.name == b.name && a.args == b.args;
  }
  friend bool operator<(const PredicateFact& a, const PredicateFact& b) {
    if (a.name != b.name) return a.name < b.name;
    return a.args < b.args;
  }

  std::string ToString() const;
};

}  // namespace htl

#endif  // HTL_MODEL_PREDICATE_FACT_H_
