#ifndef HTL_MODEL_OBJECT_H_
#define HTL_MODEL_OBJECT_H_

#include <cstdint>
#include <map>
#include <string>

#include "model/value.h"

namespace htl {

/// Globally unique object id. The paper assumes a universal set of object
/// ids: the same physical object carries the same id across all pictures in
/// which it appears (object tracking), and distinct objects get distinct ids.
using ObjectId = int64_t;

inline constexpr ObjectId kInvalidObjectId = 0;

/// One object's appearance within one video segment: the object id plus the
/// attribute values it has *in that segment* (e.g. height of an airplane in
/// a particular frame — formula (C) of the paper compares such per-segment
/// values across time via the freeze quantifier).
struct ObjectAppearance {
  ObjectId id = kInvalidObjectId;
  /// Attribute name -> value in this segment ("type", "name", "height", ...).
  std::map<std::string, AttrValue> attributes;

  /// Value of `name`, or null AttrValue when absent.
  AttrValue Attribute(const std::string& name) const {
    auto it = attributes.find(name);
    return it == attributes.end() ? AttrValue() : it->second;
  }
};

}  // namespace htl

#endif  // HTL_MODEL_OBJECT_H_
