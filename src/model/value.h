#ifndef HTL_MODEL_VALUE_H_
#define HTL_MODEL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace htl {

/// An attribute value in the extended E-R meta-data (section 2.1): null,
/// integer, real, or string. Attribute predicates over integer attributes
/// may use <, <=, =, >=, >; other types compare with = only (section 3.3).
class AttrValue {
 public:
  AttrValue() : data_(std::monostate{}) {}
  AttrValue(int64_t v) : data_(v) {}                 // NOLINT(runtime/explicit)
  AttrValue(int v) : data_(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)
  AttrValue(double v) : data_(v) {}                  // NOLINT(runtime/explicit)
  AttrValue(std::string v) : data_(std::move(v)) {}  // NOLINT(runtime/explicit)
  AttrValue(const char* v) : data_(std::string(v)) {}  // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_double() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }
  /// True for int or double.
  bool is_numeric() const { return is_int() || is_double(); }

  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return is_int() ? static_cast<double>(AsInt()) : std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }

  /// Equality: numerics compare by numeric value (1 == 1.0); strings by
  /// content; null equals only null; cross-kind otherwise unequal.
  friend bool operator==(const AttrValue& a, const AttrValue& b) {
    if (a.is_numeric() && b.is_numeric()) return a.AsDouble() == b.AsDouble();
    return a.data_ == b.data_;
  }

  /// Numeric-or-string ordering. Comparing null or mixed string/numeric
  /// returns false for every relation except inequality.
  bool LessThan(const AttrValue& o) const {
    if (is_numeric() && o.is_numeric()) return AsDouble() < o.AsDouble();
    if (is_string() && o.is_string()) return AsString() < o.AsString();
    return false;
  }

  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

}  // namespace htl

#endif  // HTL_MODEL_VALUE_H_
