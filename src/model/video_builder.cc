#include "model/video_builder.h"

#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

VideoBuilder::VideoBuilder() { nodes_.emplace_back(); }

VideoBuilder::Handle VideoBuilder::AddChild(Handle parent) {
  HTL_CHECK_LT(parent, nodes_.size());
  nodes_.emplace_back();
  Handle h = nodes_.size() - 1;
  nodes_[h].parent = parent;
  nodes_[parent].children.push_back(h);
  return h;
}

VideoBuilder::Handle VideoBuilder::AddChildren(Handle parent, int64_t n) {
  HTL_CHECK_GE(n, 1);
  Handle first = AddChild(parent);
  for (int64_t i = 1; i < n; ++i) AddChild(parent);
  return first;
}

SegmentMeta& VideoBuilder::Meta(Handle node) {
  HTL_CHECK_LT(node, nodes_.size());
  return nodes_[node].meta;
}

void VideoBuilder::NameLevel(const std::string& name, int level) {
  level_names_.emplace_back(name, level);
}

Result<VideoTree> VideoBuilder::Build() && {
  // BFS by depth; children of consecutive parents concatenate in order,
  // which is exactly the "proper sequence" layout the engine relies on.
  std::vector<std::vector<Handle>> by_depth;
  by_depth.push_back({root()});
  while (true) {
    std::vector<Handle> next;
    for (Handle h : by_depth.back()) {
      for (Handle c : nodes_[h].children) next.push_back(c);
    }
    if (next.empty()) break;
    by_depth.push_back(std::move(next));
  }

  // All leaves must lie at the deepest level.
  const int depth = static_cast<int>(by_depth.size());
  for (int level = 0; level + 1 < depth; ++level) {
    for (Handle h : by_depth[static_cast<size_t>(level)]) {
      if (nodes_[h].children.empty()) {
        return Status::InvalidArgument(
            StrCat("leaf at level ", level + 1, " but the tree has depth ", depth,
                   "; the paper's model requires all leaves at the same level"));
      }
    }
  }

  VideoTree tree;
  tree.levels_.resize(static_cast<size_t>(depth));
  // Position (1-based) of each proto node in its level.
  std::vector<SegmentId> position(nodes_.size(), kInvalidSegmentId);
  for (int level = 0; level < depth; ++level) {
    for (size_t i = 0; i < by_depth[static_cast<size_t>(level)].size(); ++i) {
      position[by_depth[static_cast<size_t>(level)][i]] = static_cast<SegmentId>(i + 1);
    }
  }
  for (int level = 0; level < depth; ++level) {
    auto& out = tree.levels_[static_cast<size_t>(level)];
    out.resize(by_depth[static_cast<size_t>(level)].size());
    for (size_t i = 0; i < out.size(); ++i) {
      Handle h = by_depth[static_cast<size_t>(level)][i];
      VideoTree::Node& node = out[i];
      node.meta = std::move(nodes_[h].meta);
      node.parent = level == 0 ? kInvalidSegmentId : position[nodes_[h].parent];
      if (!nodes_[h].children.empty()) {
        node.first_child = position[nodes_[h].children.front()];
        node.num_children = static_cast<int64_t>(nodes_[h].children.size());
      }
    }
  }
  for (const auto& [name, level] : level_names_) {
    HTL_RETURN_IF_ERROR(tree.NameLevel(name, level));
  }
  HTL_DCHECK_OK(tree.CheckInvariants());
  return tree;
}

}  // namespace htl
