#ifndef HTL_MODEL_VIDEO_STATS_H_
#define HTL_MODEL_VIDEO_STATS_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "model/video.h"

namespace htl {

/// Per-video, per-level index statistics backing bound-based top-k pruning
/// (DESIGN.md "Scale-out retrieval"): one linear scan over a video's
/// segments summarizes, for every level, which atomic predicates *could*
/// score at all — whether any object appears, which predicate names/arities
/// are recorded, and the value domains of segment and object attributes.
/// The bound walker (htl/bound.h) combines these over the formula tree into
/// a sound upper bound on the attainable fractional similarity; the
/// retriever caches one VideoStats per video, stamped with the store epoch
/// it was built at (like its per-video engines).
///
/// Soundness contract: every query here over-approximates. If
/// CompareSatisfiable / HasFact / HasObjects returns false, no segment at
/// that level can satisfy the constraint (the picture system's semantics:
/// null values satisfy no comparison, facts match by name and arity). The
/// reverse is deliberately not promised — a true answer may still score 0.
class VideoStats {
 public:
  /// Whose attribute map a comparison reads.
  enum class Scope {
    kSegment,  // segment-level attribute (type = 'western')
    kObject,   // attribute function over an object variable (height(x))
  };

  /// Distinct non-null values retained per (level, scope, attribute) before
  /// the domain saturates and equality tests become "maybe" (numeric ranges
  /// stay exact past the cap, so ordered comparisons never weaken).
  static constexpr size_t kMaxDistinctValues = 64;

  /// One pass over every segment of every level.
  static VideoStats Build(const VideoTree& video);

  /// True when any object appears in any segment at `level` (present(x)
  /// can score). Out-of-range levels answer true (never claim impossible).
  bool HasObjects(int level) const;

  /// True when a ground fact named `name` with `arity` arguments is
  /// recorded in any segment at `level`.
  bool HasFact(int level, const std::string& name, size_t arity) const;

  /// Could `attr OP value` hold for some segment/object at `level`? `test`
  /// receives each retained domain value; a saturated domain with a numeric
  /// range falls back to `test_range(num_min, num_max)` for ordered ops —
  /// callers pass a predicate that is monotone over the range endpoints.
  /// Exposed as raw domain access so this model-layer summary stays
  /// ignorant of the HTL comparison operators (htl/bound.cc owns those).
  struct AttrDomain {
    bool saturated = false;          // More than kMaxDistinctValues distinct.
    std::vector<AttrValue> values;   // Retained distinct non-null values.
    bool has_numeric = false;
    double num_min = 0.0;            // Exact over *all* numeric values seen,
    double num_max = 0.0;            // even past the saturation cap.
  };

  /// The value domain of `attr` at `level` in `scope`, or nullptr when no
  /// segment/object there carries a non-null value for it (in which case no
  /// comparison over it can be satisfied). Out-of-range levels return a
  /// saturated universal domain (never claim impossible).
  const AttrDomain* Domain(int level, Scope scope, const std::string& attr) const;

 private:
  struct LevelStats {
    bool has_objects = false;
    std::map<std::string, std::vector<size_t>> fact_arities;  // Sorted, unique.
    std::map<std::string, AttrDomain> segment_attrs;
    std::map<std::string, AttrDomain> object_attrs;
  };

  static void AddValue(AttrDomain& domain, const AttrValue& value);

  // A saturated domain with an unbounded numeric range, returned for levels
  // outside [1, num_levels] so out-of-range lookups stay conservative.
  static const AttrDomain& UniversalDomain();

  std::vector<LevelStats> levels_;  // Index level - 1.
};

}  // namespace htl

#endif  // HTL_MODEL_VIDEO_STATS_H_
