#include "model/segment.h"

#include <algorithm>

namespace htl {

namespace {
bool IdLess(const ObjectAppearance& a, ObjectId id) { return a.id < id; }
}  // namespace

void SegmentMeta::AddObject(ObjectAppearance object) {
  auto it = std::lower_bound(objects_.begin(), objects_.end(), object.id, IdLess);
  if (it != objects_.end() && it->id == object.id) {
    for (auto& [k, v] : object.attributes) it->attributes[k] = v;
    return;
  }
  objects_.insert(it, std::move(object));
}

bool SegmentMeta::HasObject(ObjectId id) const { return FindObject(id) != nullptr; }

const ObjectAppearance* SegmentMeta::FindObject(ObjectId id) const {
  auto it = std::lower_bound(objects_.begin(), objects_.end(), id, IdLess);
  if (it != objects_.end() && it->id == id) return &*it;
  return nullptr;
}

void SegmentMeta::AddFact(PredicateFact fact) {
  auto it = std::lower_bound(facts_.begin(), facts_.end(), fact);
  if (it != facts_.end() && *it == fact) return;
  facts_.insert(it, std::move(fact));
}

bool SegmentMeta::HasFact(const PredicateFact& fact) const {
  return std::binary_search(facts_.begin(), facts_.end(), fact);
}

}  // namespace htl
