#ifndef HTL_MODEL_VIDEO_H_
#define HTL_MODEL_VIDEO_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "model/segment.h"
#include "util/interval.h"
#include "util/result.h"
#include "util/status.h"

namespace htl {

/// Reference to a node in the hierarchy: (level, id). Levels are numbered
/// from 1 at the root, as in the paper; ids are 1-based positions within the
/// level's temporal order.
struct NodeRef {
  int level = 1;
  SegmentId id = 1;

  friend bool operator==(const NodeRef& a, const NodeRef& b) {
    return a.level == b.level && a.id == b.id;
  }
};

/// The hierarchical video model of section 2.1: a tree whose nodes are video
/// segments. Level 1 holds the single root (the whole video); each level is
/// a temporally ordered sequence of segments that decomposes the level
/// above; all leaves lie at the same depth. Because every level is a full
/// decomposition of its parent level in order, the descendants of any node
/// at any deeper level form a *contiguous* id interval — which is what makes
/// interval-coded similarity lists work per level.
class VideoTree {
 public:
  /// Number of levels; >= 1. Level numbers run 1..num_levels().
  int num_levels() const { return static_cast<int>(levels_.size()); }

  /// Number of segments at `level` (1-based). Level 1 always has 1.
  int64_t NumSegments(int level) const;

  /// Meta-data of node (level, id); ids are 1-based. Checks bounds.
  const SegmentMeta& Meta(int level, SegmentId id) const;
  SegmentMeta& MutableMeta(int level, SegmentId id);

  const SegmentMeta& Meta(const NodeRef& ref) const { return Meta(ref.level, ref.id); }

  /// Parent id (at level-1) of node (level, id); level must be >= 2.
  SegmentId Parent(int level, SegmentId id) const;

  /// Children of node (level, id) as an id interval at level+1; empty when
  /// the node is a leaf or level is the last level.
  Interval Children(int level, SegmentId id) const;

  /// Descendants of node (level, id) at `target_level` (>= level), as a
  /// contiguous id interval at that level. target_level == level yields
  /// [id, id]. Empty if the node has no descendants that deep.
  Interval DescendantsAtLevel(int level, SegmentId id, int target_level) const;

  /// Associates `name` with a level number (e.g. "scene" -> 3, "shot" -> 4,
  /// "frame" -> 5) so queries may use at-scene-level etc.
  Status NameLevel(const std::string& name, int level);

  /// Resolves a level name registered by NameLevel.
  Result<int> LevelByName(const std::string& name) const;

  const std::map<std::string, int>& level_names() const { return level_names_; }

  /// The video's display name (root attribute "title" when set).
  std::string Title() const;

  /// Builds a two-level video (root + `num_children` child segments), the
  /// simplified shape assumed by the algorithms of section 3. Children carry
  /// empty meta-data to be filled by the caller.
  static VideoTree Flat(int64_t num_children);

  /// Validates proper-sequence well-formedness (section 2.1): level 1 holds
  /// exactly the root; every deeper node's parent pointer is in range and
  /// agrees with the parent's children interval; children intervals are
  /// non-overlapping, in temporal order, and together cover the next level
  /// exactly; level names map to existing levels. O(total nodes); production
  /// call sites go through HTL_DCHECK_OK.
  Status CheckInvariants() const;

 private:
  friend class VideoBuilder;

  struct Node {
    SegmentId parent = kInvalidSegmentId;  // Id at the previous level.
    SegmentId first_child = kInvalidSegmentId;
    int64_t num_children = 0;
    SegmentMeta meta;
  };

  Node& NodeAt(int level, SegmentId id);
  const Node& NodeAt(int level, SegmentId id) const;

  std::vector<std::vector<Node>> levels_;
  std::map<std::string, int> level_names_;
};

/// A collection of videos, keyed by a small integer video id — the
/// "meta-data database" of figure 1. Retrieval runs per video and merges
/// results across videos for global top-k.
///
/// Lock discipline (DESIGN.md): the store holds no Mutex capability by
/// design. Concurrent *queries* only read `videos_` and the atomic epoch;
/// *mutations* (AddVideo / MutableVideo / BumpEpoch) must be externally
/// serialized against in-flight queries by the caller, and the epoch is
/// what lets caches detect that serialization point after the fact. The
/// streaming-ingest work (ROADMAP item 4) is where per-video htl::Mutex
/// state lands — born annotated, per the no-raw-mutex ground rule.
class MetadataStore {
 public:
  using VideoId = int64_t;

  MetadataStore() = default;
  // The epoch cell is atomic, so copies and moves (test fixtures return
  // stores by value) are spelled out; they transfer the epoch *value*.
  MetadataStore(const MetadataStore& other)
      : videos_(other.videos_), epoch_(other.epoch()) {}
  MetadataStore(MetadataStore&& other) noexcept
      : videos_(std::move(other.videos_)), epoch_(other.epoch()) {}
  MetadataStore& operator=(const MetadataStore& other) {
    videos_ = other.videos_;
    epoch_.store(other.epoch(), std::memory_order_release);
    return *this;
  }
  MetadataStore& operator=(MetadataStore&& other) noexcept {
    videos_ = std::move(other.videos_);
    epoch_.store(other.epoch(), std::memory_order_release);
    return *this;
  }

  /// Adds a video and returns its id (ids start at 1). Bumps the epoch.
  VideoId AddVideo(VideoTree video);

  int64_t num_videos() const { return static_cast<int64_t>(videos_.size()); }

  /// Video by id; checks bounds.
  const VideoTree& Video(VideoId id) const;
  /// Mutable access; handing out the reference counts as a mutation and
  /// bumps the epoch (conservative — callers take it in order to write).
  VideoTree& MutableVideo(VideoId id);

  /// The store's mutation generation. Every mutation (AddVideo,
  /// MutableVideo, BumpEpoch) advances it; caches stamp entries with the
  /// epoch they were computed at and lazily evict entries whose stamp
  /// fell behind (DESIGN.md "Result and sub-formula caching"). Mutations
  /// must still be externally serialized against in-flight queries; the
  /// epoch makes cached state safe *across* that serialization point.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Manually invalidates all cached state derived from this store (e.g.
  /// after writing through a previously obtained MutableVideo reference).
  void BumpEpoch() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

 private:
  std::vector<VideoTree> videos_;
  std::atomic<uint64_t> epoch_{0};
};

}  // namespace htl

#endif  // HTL_MODEL_VIDEO_H_
