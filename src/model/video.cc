#include "model/video.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

int64_t VideoTree::NumSegments(int level) const {
  HTL_CHECK_GE(level, 1);
  HTL_CHECK_LE(level, num_levels());
  return static_cast<int64_t>(levels_[level - 1].size());
}

VideoTree::Node& VideoTree::NodeAt(int level, SegmentId id) {
  HTL_CHECK_GE(level, 1);
  HTL_CHECK_LE(level, num_levels());
  HTL_CHECK_GE(id, 1);
  HTL_CHECK_LE(id, NumSegments(level));
  return levels_[level - 1][static_cast<size_t>(id - 1)];
}

const VideoTree::Node& VideoTree::NodeAt(int level, SegmentId id) const {
  return const_cast<VideoTree*>(this)->NodeAt(level, id);
}

const SegmentMeta& VideoTree::Meta(int level, SegmentId id) const {
  return NodeAt(level, id).meta;
}

SegmentMeta& VideoTree::MutableMeta(int level, SegmentId id) {
  return NodeAt(level, id).meta;
}

SegmentId VideoTree::Parent(int level, SegmentId id) const {
  HTL_CHECK_GE(level, 2);
  return NodeAt(level, id).parent;
}

Interval VideoTree::Children(int level, SegmentId id) const {
  const Node& n = NodeAt(level, id);
  if (n.num_children == 0) return Interval{1, 0};
  return Interval{n.first_child, n.first_child + n.num_children - 1};
}

Interval VideoTree::DescendantsAtLevel(int level, SegmentId id, int target_level) const {
  HTL_CHECK_GE(target_level, level);
  Interval range{id, id};
  for (int l = level; l < target_level; ++l) {
    if (range.empty()) return range;
    Interval first = Children(l, range.begin);
    Interval last = Children(l, range.end);
    if (first.empty()) {
      // Scan forward for the first node in range with children.
      SegmentId s = range.begin;
      while (s <= range.end && Children(l, s).empty()) ++s;
      if (s > range.end) return Interval{1, 0};
      first = Children(l, s);
    }
    if (last.empty()) {
      SegmentId s = range.end;
      while (s >= range.begin && Children(l, s).empty()) --s;
      if (s < range.begin) return Interval{1, 0};
      last = Children(l, s);
    }
    range = Interval{first.begin, last.end};
  }
  return range;
}

Status VideoTree::NameLevel(const std::string& name, int level) {
  if (level < 1 || level > num_levels()) {
    return Status::OutOfRange(
        StrCat("level ", level, " out of range 1..", num_levels()));
  }
  level_names_[name] = level;
  return Status::OK();
}

Result<int> VideoTree::LevelByName(const std::string& name) const {
  auto it = level_names_.find(name);
  if (it == level_names_.end()) {
    return Status::NotFound(StrCat("no level named '", name, "'"));
  }
  return it->second;
}

std::string VideoTree::Title() const {
  if (num_levels() == 0) return "";
  AttrValue title = Meta(1, 1).Attribute("title");
  return title.is_string() ? title.AsString() : "";
}

VideoTree VideoTree::Flat(int64_t num_children) {
  HTL_CHECK_GE(num_children, 0);
  VideoTree v;
  v.levels_.resize(num_children > 0 ? 2 : 1);
  Node root;
  root.first_child = num_children > 0 ? 1 : kInvalidSegmentId;
  root.num_children = num_children;
  v.levels_[0].push_back(std::move(root));
  if (num_children > 0) {
    v.levels_[1].resize(static_cast<size_t>(num_children));
    for (auto& child : v.levels_[1]) child.parent = 1;
  }
  return v;
}

Status VideoTree::CheckInvariants() const {
  if (levels_.empty()) return Status::Internal("video has no levels");
  if (levels_[0].size() != 1) {
    return Status::Internal(
        StrCat("level 1 must hold exactly the root, has ", levels_[0].size()));
  }
  if (levels_[0][0].parent != kInvalidSegmentId) {
    return Status::Internal("root must not have a parent");
  }
  for (int level = 1; level <= num_levels(); ++level) {
    const auto& nodes = levels_[static_cast<size_t>(level - 1)];
    const int64_t next_size =
        level < num_levels()
            ? static_cast<int64_t>(levels_[static_cast<size_t>(level)].size())
            : 0;
    // Children intervals must march left to right across the next level
    // without gaps or overlaps: that contiguity is what makes interval-coded
    // similarity lists valid per level.
    SegmentId next_covered = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      const Node& n = nodes[i];
      if (n.num_children < 0) {
        return Status::Internal(StrCat("node (", level, ",", i + 1,
                                       ") has negative child count ", n.num_children));
      }
      if (n.num_children == 0) continue;
      if (level == num_levels()) {
        return Status::Internal(StrCat("node (", level, ",", i + 1,
                                       ") has children below the last level"));
      }
      if (n.first_child != next_covered + 1) {
        return Status::Internal(
            StrCat("node (", level, ",", i + 1, ") children start at ", n.first_child,
                   ", expected ", next_covered + 1, " (gap or overlap)"));
      }
      next_covered = n.first_child + n.num_children - 1;
      if (next_covered > next_size) {
        return Status::Internal(StrCat("node (", level, ",", i + 1,
                                       ") children run to ", next_covered,
                                       " past level ", level + 1, " size ", next_size));
      }
      for (SegmentId c = n.first_child; c <= next_covered; ++c) {
        const Node& child = levels_[static_cast<size_t>(level)][static_cast<size_t>(c - 1)];
        if (child.parent != static_cast<SegmentId>(i + 1)) {
          return Status::Internal(
              StrCat("node (", level + 1, ",", c, ") has parent ", child.parent,
                     " but lies in the children interval of (", level, ",", i + 1, ")"));
        }
      }
    }
    if (next_covered != next_size) {
      return Status::Internal(StrCat("level ", level + 1, " has ", next_size,
                                     " segments but children intervals cover ",
                                     next_covered));
    }
  }
  for (const auto& [name, level] : level_names_) {
    if (level < 1 || level > num_levels()) {
      return Status::Internal(
          StrCat("level name '", name, "' maps to out-of-range level ", level));
    }
  }
  return Status::OK();
}

MetadataStore::VideoId MetadataStore::AddVideo(VideoTree video) {
  videos_.push_back(std::move(video));
  BumpEpoch();
  return static_cast<VideoId>(videos_.size());
}

const VideoTree& MetadataStore::Video(VideoId id) const {
  HTL_CHECK_GE(id, 1);
  HTL_CHECK_LE(id, num_videos());
  return videos_[static_cast<size_t>(id - 1)];
}

VideoTree& MetadataStore::MutableVideo(VideoId id) {
  HTL_CHECK_GE(id, 1);
  HTL_CHECK_LE(id, num_videos());
  BumpEpoch();
  return videos_[static_cast<size_t>(id - 1)];
}

}  // namespace htl
