#include "model/value.h"

#include "util/string_util.h"

namespace htl {

std::string AttrValue::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return StrCat(AsInt());
  if (is_double()) return StrCat(AsDouble());
  return StrCat("'", AsString(), "'");
}

}  // namespace htl
