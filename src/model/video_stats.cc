#include "model/video_stats.h"

#include <algorithm>
#include <limits>

namespace htl {

void VideoStats::AddValue(AttrDomain& domain, const AttrValue& value) {
  if (value.is_null()) return;  // Null satisfies no comparison.
  if (value.is_numeric()) {
    const double d = value.AsDouble();
    if (!domain.has_numeric) {
      domain.has_numeric = true;
      domain.num_min = domain.num_max = d;
    } else {
      domain.num_min = std::min(domain.num_min, d);
      domain.num_max = std::max(domain.num_max, d);
    }
  }
  if (domain.saturated) return;
  for (const AttrValue& v : domain.values) {
    if (v == value) return;
  }
  if (domain.values.size() >= kMaxDistinctValues) {
    domain.saturated = true;
    return;
  }
  domain.values.push_back(value);
}

const VideoStats::AttrDomain& VideoStats::UniversalDomain() {
  static const AttrDomain* universal = [] {
    auto* d = new AttrDomain();
    d->saturated = true;
    d->has_numeric = true;
    d->num_min = std::numeric_limits<double>::lowest();
    d->num_max = std::numeric_limits<double>::max();
    return d;
  }();
  return *universal;
}

VideoStats VideoStats::Build(const VideoTree& video) {
  VideoStats stats;
  stats.levels_.resize(static_cast<size_t>(video.num_levels()));
  for (int level = 1; level <= video.num_levels(); ++level) {
    LevelStats& ls = stats.levels_[static_cast<size_t>(level - 1)];
    const int64_t num_segments = video.NumSegments(level);
    for (SegmentId id = 1; id <= num_segments; ++id) {
      const SegmentMeta& meta = video.Meta(level, id);
      if (!meta.objects().empty()) ls.has_objects = true;
      for (const auto& [name, value] : meta.attributes()) {
        AddValue(ls.segment_attrs[name], value);
      }
      for (const ObjectAppearance& obj : meta.objects()) {
        for (const auto& [name, value] : obj.attributes) {
          AddValue(ls.object_attrs[name], value);
        }
      }
      for (const PredicateFact& fact : meta.facts()) {
        std::vector<size_t>& arities = ls.fact_arities[fact.name];
        const size_t arity = fact.args.size();
        auto it = std::lower_bound(arities.begin(), arities.end(), arity);
        if (it == arities.end() || *it != arity) arities.insert(it, arity);
      }
    }
  }
  return stats;
}

bool VideoStats::HasObjects(int level) const {
  if (level < 1 || level > static_cast<int>(levels_.size())) return true;
  return levels_[static_cast<size_t>(level - 1)].has_objects;
}

bool VideoStats::HasFact(int level, const std::string& name, size_t arity) const {
  if (level < 1 || level > static_cast<int>(levels_.size())) return true;
  const LevelStats& ls = levels_[static_cast<size_t>(level - 1)];
  auto it = ls.fact_arities.find(name);
  if (it == ls.fact_arities.end()) return false;
  return std::binary_search(it->second.begin(), it->second.end(), arity);
}

const VideoStats::AttrDomain* VideoStats::Domain(int level, Scope scope,
                                                 const std::string& attr) const {
  if (level < 1 || level > static_cast<int>(levels_.size())) {
    return &UniversalDomain();
  }
  const LevelStats& ls = levels_[static_cast<size_t>(level - 1)];
  const std::map<std::string, AttrDomain>& attrs =
      scope == Scope::kSegment ? ls.segment_attrs : ls.object_attrs;
  auto it = attrs.find(attr);
  return it == attrs.end() ? nullptr : &it->second;
}

}  // namespace htl
