#ifndef HTL_NET_SERVER_H_
#define HTL_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "engine/exec_context.h"
#include "engine/query_options.h"
#include "engine/retrieval.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "sim/sim_list.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace htl::net {

/// Tuning for one QueryServer. The defaults are sized for tests and the
/// loopback load harness; a deployment sets the watermarks from measured
/// capacity (DESIGN.md "Query service" explains the shedding state machine).
struct ServerOptions {
  /// TCP port on 127.0.0.1 (0 = ephemeral; read it back via port()).
  uint16_t port = 0;
  int accept_backlog = 64;

  /// Session worker threads. The server's pool holds worker_threads + 1
  /// threads (the extra one runs the accept loop).
  int worker_threads = 4;

  /// Soft watermark: with more than this many admitted sessions in flight,
  /// new requests run *degraded* — shed_budgets replace the unlimited
  /// per-video budgets, so overweight videos are skipped and the response
  /// is a ranked partial top-k (RetrievalReport semantics). 0 means
  /// worker_threads (degrade as soon as requests queue).
  int64_t soft_watermark = 0;

  /// Hard watermark: with more than this many admitted sessions, new
  /// connections are refused with kWireOverloaded. 0 means
  /// 4 * max(soft_watermark, worker_threads). Shedding by rejection is the
  /// last resort — the soft band sheds by degrading first.
  int64_t hard_watermark = 0;

  /// Per-connection transport deadlines. A client that stalls mid-frame
  /// (slow loris) is dropped when the read deadline expires; a client that
  /// stops draining its socket is dropped at the write deadline.
  int64_t read_timeout_ms = 2000;
  int64_t write_timeout_ms = 2000;

  /// Server-side budget for requests that do not carry deadline_ms.
  int64_t default_deadline_ms = 1000;

  /// Cap on one frame body in either direction (oversized = rejected
  /// before allocation).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;

  /// Graceful drain: in-flight sessions get this long to finish naturally;
  /// at the deadline they are cancelled (ExecContext::Cancel + socket
  /// shutdown) and must unwind promptly. See QueryServer::Shutdown.
  int64_t drain_deadline_ms = 2000;

  /// Cap on hits returned per response (k clamps down to it; keeps every
  /// response under max_frame_bytes).
  int64_t max_hits = 1024;

  /// Degraded-mode per-video budgets applied above the soft watermark.
  ExecBudgets shed_budgets{.max_rows = 4096, .max_tables = 64,
                           .max_depth = 64};

  /// Base options for the server's Retrievers (parallelism, semantics,
  /// cache sizes). cache_mode and parallelism are overridden per request
  /// kind (see protocol.h QueryRequest).
  QueryOptions query_options;

  /// Named input lists + sequence length for QueryKind::kSql (the paper's
  /// SQL-based system evaluates formulas over these relations). Empty map:
  /// kSql answers kWireUnimplemented.
  std::map<std::string, SimilarityList> sql_inputs;
  int64_t sql_n = 0;

  // --- Telemetry plane (DESIGN.md "Telemetry plane"). ---------------------

  /// TCP port for the admin listener on 127.0.0.1 (0 = ephemeral; read it
  /// back via admin_port()). Deliberately a *second* listener: admission
  /// control runs at accept time on the query port, so a separate socket is
  /// what keeps metrics/healthz reachable while the query port sheds.
  uint16_t admin_port = 0;

  /// Transport deadlines for admin exchanges. Admin frames are tiny and the
  /// answers are computed locally, so these are tight by default.
  int64_t admin_read_timeout_ms = 1000;
  int64_t admin_write_timeout_ms = 1000;

  /// Wide-event query log retention (ring capacity, slow threshold,
  /// sampling, profile cap). Backs the admin `slowlog` / `trace` verbs.
  obs::QueryLog::Options query_log;

  /// Run every request through the profiled engine entry points so the
  /// query log can retain full traces for slow/sampled requests. Off: wide
  /// events still record, but the trace-derived fields stay empty and the
  /// slowlog holds no profiles.
  bool trace_requests = true;

  /// Stall watchdog: a live session older than this flips healthz to
  /// unhealthy and bumps net.watchdog.stalls (it un-flips when the session
  /// ends). 0 derives a bound that no healthy session can reach —
  /// read + write timeouts + the default deadline + 1s slack; negative
  /// disables the watchdog.
  int64_t watchdog_stall_ms = 0;
};

/// Multi-threaded TCP query service in front of a Retriever. One
/// length-prefixed request/response exchange per connection (net/frame.h).
///
/// Robustness contract — the server degrades, it never hangs or crashes:
///   * transport: per-connection read/write deadlines and a max-frame cap
///     drop slow-loris and oversized peers cleanly; malformed frames get a
///     well-formed error response when the transport still works, a close
///     otherwise; a mid-query disconnect never takes a worker down;
///   * budget: request deadline_ms maps onto the session's ExecContext, so
///     server-side evaluation is actually cancelled when the client's
///     budget expires (engines poll the context — PR 2);
///   * admission: in-flight sessions are counted; past the soft watermark
///     requests run under shed_budgets and return ranked *partial* results
///     (degraded shedding), past the hard watermark connections are refused
///     with kWireOverloaded (reject shedding);
///   * drain: Shutdown() stops accepting, lets in-flight sessions finish
///     until the drain deadline, then cancels the stragglers (context
///     cancel + socket shutdown) and joins every worker.
///
/// Fault points: net.accept, net.read_frame, net.write_frame, net.session
/// let tests inject torn frames, stalled reads, and mid-response
/// disconnects; net.admin.* cover the admin plane. Metrics: net.* counters/
/// gauges/histograms (accepted, sheds, rejects, frame errors, in-flight,
/// per-stage request latency).
///
/// Telemetry plane: a second lightweight listener (admin_port) serves the
/// AdminVerb protocol — metrics text/JSON, a healthz document, the
/// wide-event slowlog, and Chrome-trace export of retained profiles — and
/// is exempt from admission control by construction. Every request lands
/// one obs::QueryLogRecord in the server's QueryLog whatever its outcome
/// (including undecodable frames), and a stall watchdog on the admin loop
/// flags sessions that outlive every legitimate deadline.
///
/// Thread model: Start() spawns the accept loop and session workers on an
/// internal ThreadPool; all public methods are safe from any thread.
/// `store` must outlive the server and must not be mutated while the
/// server runs (the Retriever contract).
class QueryServer {
 public:
  QueryServer(const MetadataStore* store, ServerOptions options);
  ~QueryServer();

  QueryServer(const QueryServer&) = delete;
  QueryServer& operator=(const QueryServer&) = delete;

  /// Binds, listens, and spawns the accept loop. Fails on bind errors;
  /// calling Start twice is FailedPrecondition.
  Status Start();

  /// The bound query port (valid after a successful Start).
  uint16_t port() const { return port_; }

  /// The bound admin/telemetry port (valid after a successful Start).
  uint16_t admin_port() const { return admin_port_; }

  /// Graceful drain; see the class comment. Returns OK when every session
  /// finished (naturally or after cancellation) and all threads joined;
  /// Internal if a session leaked past the hard bound (a bug — sessions
  /// poll their context and their socket is shut down under them).
  /// Idempotent; the destructor calls it if the caller did not.
  Status Shutdown();

  /// Admitted sessions currently in flight (queued + running).
  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// The wide-event query log backing the admin slowlog/trace verbs
  /// (tests and tools inspect it directly; recording is internal).
  const obs::QueryLog& query_log() const { return query_log_; }

  /// Sessions currently flagged by the stall watchdog (healthz "healthy"
  /// is exactly this being zero while the server runs).
  int64_t stalled_sessions() const;

 private:
  /// One admitted session visible to the drain path. The session thread
  /// owns the socket and context; this entry only lends them to Shutdown
  /// for Cancel()/ShutdownBoth() while the registry lock is held — the
  /// session deregisters (under the same lock) before destroying either.
  struct LiveSession {
    Socket* socket = nullptr;
    ExecContext* ctx = nullptr;
    /// Admission time + watchdog flag (set once by CheckStalls, cleared by
    /// the session's deregistration).
    std::chrono::steady_clock::time_point start;
    bool stalled = false;
  };

  void AcceptLoop();

  /// Runs one admitted connection on a worker: registers with the drain
  /// path, serves the request, deregisters, releases the admission slot.
  /// Never propagates errors (they become responses, closes, and metrics).
  void RunSession(uint64_t session_id, const std::shared_ptr<Socket>& socket);

  /// The session body: read frame -> decode -> evaluate -> respond, then
  /// observe the total latency and land the wide event in the query log
  /// (every exit path, including closes without a response).
  void ServeOneRequest(uint64_t session_id, const Socket& socket);

  /// The exchange itself; fills `record` (and `profile` when the request
  /// ran traced) as it goes instead of reporting through return values.
  void ServeRequestOnSocket(uint64_t session_id, const Socket& socket,
                            obs::QueryLogRecord* record,
                            obs::QueryProfile* profile);

  /// Derives the trace-dependent wide-event fields (formula class, cache
  /// hit, rows/tables) from `profile`, then records both into query_log_.
  void RecordWideEvent(obs::QueryLogRecord record, obs::QueryProfile profile);

  /// Evaluates one decoded request under `ctx`. With trace_requests (or
  /// kFlagWantProfile) the profiled entry points run and the trace lands in
  /// `*profile` for the query log.
  QueryResponse HandleRequest(const QueryRequest& request, bool degraded,
                              ExecContext* ctx, obs::QueryProfile* profile);
  QueryResponse HandleHtl(const QueryRequest& request, ExecContext* ctx,
                          obs::QueryProfile* profile);
  QueryResponse HandleSql(const QueryRequest& request, ExecContext* ctx,
                          obs::QueryProfile* profile);

  /// Admin plane: its own accept loop (serving exchanges inline — admin
  /// answers are small and computed locally) plus the per-tick stall scan.
  void AdminLoop();
  void ServeAdminConn(const Socket& socket);
  AdminResponse HandleAdmin(const AdminRequest& request);
  std::string HealthzJson();

  /// Flags live sessions older than the watchdog bound (see
  /// ServerOptions::watchdog_stall_ms). Runs on the admin loop's tick.
  void CheckStalls();

  /// Copies RetrievalReport truth (evaluated/failed counts, partial flag,
  /// summary or profile text) onto the wire response.
  static void FillReport(const RetrievalReport& report, bool want_profile,
                         QueryResponse* response);

  /// The lazily built Retriever for (use_cache, serial) — at most four
  /// instances, shared by all sessions (Retriever is concurrency-safe).
  Retriever* RetrieverFor(bool use_cache, bool serial);

  /// Best-effort error/overload response write (transport failures are
  /// swallowed — the peer is already gone).
  void WriteResponseBestEffort(const Socket& socket,
                               const QueryResponse& response);

  const MetadataStore* store_;
  ServerOptions options_;

  Socket listener_;
  uint16_t port_ = 0;
  Socket admin_listener_;
  uint16_t admin_port_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  /// Wall-clock start of Start(), for healthz uptime.
  std::chrono::steady_clock::time_point started_at_;
  /// Resolved watchdog bound in ms (< 0: watchdog disabled).
  int64_t watchdog_bound_ms_ = -1;

  obs::QueryLog query_log_;

  std::atomic<bool> started_{false};
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  /// Stops the admin loop — set strictly *after* the query-side drain, so
  /// the telemetry plane keeps answering (and reporting "draining") while
  /// sessions unwind.
  std::atomic<bool> admin_stopping_{false};
  /// Set by the drain cancel sweep: sessions that dequeue after it respond
  /// kWireOverloaded ("draining") instead of starting work.
  std::atomic<bool> drain_cancelled_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<uint64_t> next_session_id_{1};

  /// Serializes Shutdown bodies (double Shutdown — e.g. explicit call plus
  /// destructor — must not drain or destroy the pool concurrently).
  Mutex shutdown_mu_;

  mutable Mutex mu_;
  CondVar drained_cv_;  // Signalled on session end and loop exits.
  bool accept_loop_done_ HTL_GUARDED_BY(mu_) = false;
  bool admin_loop_done_ HTL_GUARDED_BY(mu_) = false;
  std::map<uint64_t, LiveSession> live_ HTL_GUARDED_BY(mu_);
  /// Live sessions currently past the watchdog bound (flag set in live_).
  int64_t stalled_sessions_ HTL_GUARDED_BY(mu_) = 0;

  Mutex retrievers_mu_;
  std::unique_ptr<Retriever> retrievers_[4] HTL_GUARDED_BY(retrievers_mu_);

  // Metric cells resolved once (stable pointers, lock-free to bump).
  obs::Counter* accepted_ = nullptr;
  obs::Counter* rejected_ = nullptr;
  obs::Counter* shed_degraded_ = nullptr;
  obs::Counter* frame_errors_ = nullptr;
  obs::Counter* responses_ok_ = nullptr;
  obs::Counter* responses_error_ = nullptr;
  obs::Counter* admin_requests_ = nullptr;
  obs::Counter* admin_errors_ = nullptr;
  obs::Counter* watchdog_stalls_ = nullptr;
  obs::Gauge* in_flight_gauge_ = nullptr;
  obs::Gauge* stalled_gauge_ = nullptr;
  obs::Histogram* latency_us_ = nullptr;
  obs::Histogram* decode_us_ = nullptr;
  obs::Histogram* execute_us_ = nullptr;
  obs::Histogram* encode_us_ = nullptr;
};

}  // namespace htl::net

#endif  // HTL_NET_SERVER_H_
