#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "net/socket.h"

namespace htl::net {

QueryClient::QueryClient(ClientOptions options)
    : options_(std::move(options)) {
  if (options_.max_attempts < 1) options_.max_attempts = 1;
  if (options_.backoff_initial_ms < 0) options_.backoff_initial_ms = 0;
  if (options_.backoff_max_ms < options_.backoff_initial_ms) {
    options_.backoff_max_ms = options_.backoff_initial_ms;
  }
  if (options_.backoff_multiplier < 1.0) options_.backoff_multiplier = 1.0;
}

int64_t QueryClient::BackoffDelayMs(const ClientOptions& options,
                                    int attempt) {
  if (attempt < 1 || options.backoff_initial_ms <= 0) return 0;
  double delay = static_cast<double>(options.backoff_initial_ms);
  const double cap = static_cast<double>(options.backoff_max_ms);
  for (int i = 1; i < attempt && delay < cap; ++i) {
    delay *= options.backoff_multiplier;
  }
  return static_cast<int64_t>(std::min(delay, cap));
}

Result<QueryResponse> QueryClient::QueryOnce(
    const QueryRequest& request) const {
  HTL_ASSIGN_OR_RETURN(
      const std::string framed,
      FrameMessage(EncodeRequest(request), options_.max_frame_bytes));

  HTL_ASSIGN_OR_RETURN(
      const Socket conn,
      Connect(options_.host, options_.port,
              DeadlineAfterMs(options_.connect_timeout_ms)));

  const SocketDeadline io_deadline = DeadlineAfterMs(options_.io_timeout_ms);
  HTL_RETURN_IF_ERROR(WriteFull(conn, framed.data(), framed.size(),
                                io_deadline));

  uint8_t header[kFrameHeaderBytes];
  HTL_RETURN_IF_ERROR(ReadFull(conn, header, sizeof(header), io_deadline));
  HTL_ASSIGN_OR_RETURN(const uint32_t body_len,
                       CheckFrameHeader(header, options_.max_frame_bytes));
  std::string body(body_len, '\0');
  if (body_len > 0) {
    HTL_RETURN_IF_ERROR(ReadFull(conn, body.data(), body.size(),
                                 io_deadline));
  }
  return DecodeResponse(body);
}

AdminClient::AdminClient(ClientOptions options)
    : options_(std::move(options)) {}

Result<AdminResponse> AdminClient::Call(const AdminRequest& request) const {
  HTL_ASSIGN_OR_RETURN(
      const std::string framed,
      FrameMessage(EncodeAdminRequest(request), options_.max_frame_bytes));

  HTL_ASSIGN_OR_RETURN(
      const Socket conn,
      Connect(options_.host, options_.port,
              DeadlineAfterMs(options_.connect_timeout_ms)));

  const SocketDeadline io_deadline = DeadlineAfterMs(options_.io_timeout_ms);
  HTL_RETURN_IF_ERROR(
      WriteFull(conn, framed.data(), framed.size(), io_deadline));

  uint8_t header[kFrameHeaderBytes];
  HTL_RETURN_IF_ERROR(ReadFull(conn, header, sizeof(header), io_deadline));
  HTL_ASSIGN_OR_RETURN(const uint32_t body_len,
                       CheckFrameHeader(header, options_.max_frame_bytes));
  std::string body(body_len, '\0');
  if (body_len > 0) {
    HTL_RETURN_IF_ERROR(ReadFull(conn, body.data(), body.size(), io_deadline));
  }
  return DecodeAdminResponse(body);
}

Result<std::string> AdminClient::Fetch(AdminVerb verb, int64_t arg) const {
  AdminRequest request;
  request.verb = verb;
  request.arg = arg;
  HTL_ASSIGN_OR_RETURN(AdminResponse response, Call(request));
  if (!response.ok()) {
    return StatusFromWire(response.status, std::move(response.body));
  }
  return std::move(response.body);
}

Result<QueryResponse> QueryClient::Query(const QueryRequest& request) const {
  Status last = Status::Unavailable("no attempt made");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      const int64_t delay = BackoffDelayMs(options_, attempt);
      if (delay > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      }
    }

    auto response = QueryOnce(request);
    if (response.ok()) {
      if (response->status == WireStatus::kWireOverloaded &&
          attempt + 1 < options_.max_attempts) {
        // Explicit shed/drain refusal: the one *response* worth backing off
        // and retrying. The final attempt's Overloaded response is returned
        // as-is so callers see the refusal, not a synthetic error.
        last = StatusFromWire(response->status, response->message);
        continue;
      }
      return response;
    }
    if (!response.status().IsUnavailable()) {
      return response;  // Deterministic failure or spent deadline: give up.
    }
    last = response.status();  // Transient transport failure: retry.
  }
  return last;
}

}  // namespace htl::net
