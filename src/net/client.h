#ifndef HTL_NET_CLIENT_H_
#define HTL_NET_CLIENT_H_

#include <cstdint>
#include <string>

#include "net/frame.h"
#include "net/protocol.h"
#include "util/result.h"

namespace htl::net {

/// Tuning for one QueryClient.
struct ClientOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  /// Transport deadlines: establishing the connection, and each of the
  /// request-write / response-read halves of the exchange. A server that
  /// stalls mid-frame surfaces as DeadlineExceeded, never a hang.
  int64_t connect_timeout_ms = 1000;
  int64_t io_timeout_ms = 3000;

  /// Retry policy: total attempts (1 = no retries). Only *retryable*
  /// failures are retried — see QueryClient::Query.
  int max_attempts = 3;

  /// Capped exponential backoff between attempts: attempt n (n >= 1 is the
  /// first retry) sleeps initial * multiplier^(n-1) ms, capped at max.
  /// Deterministic (no jitter) so tests can assert the schedule exactly.
  int64_t backoff_initial_ms = 10;
  int64_t backoff_max_ms = 500;
  double backoff_multiplier = 2.0;

  /// Frame cap for responses (must be >= the server's; oversized inbound
  /// frames are rejected before allocation).
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Client for the QueryServer wire protocol: one connect/request/response
/// exchange per attempt, deadlines on every blocking step, and capped
/// exponential backoff on retryable failures.
///
/// Retryable (up to max_attempts, with backoff):
///   * Unavailable transport errors — connection refused, peer reset, torn
///     response (the server died or shed the connection);
///   * kWireOverloaded responses — the server's explicit shed/drain refusal
///     (backing off is the entire point of that status).
/// Never retried:
///   * DeadlineExceeded — the budget is spent; retrying cannot help and
///     would pile onto an overloaded server exactly when it hurts most;
///   * every other error (InvalidArgument, ParseError, Internal, ...) —
///     deterministic failures that would fail identically again.
///
/// Thread model: stateless between calls; one QueryClient may be shared by
/// any number of threads.
class QueryClient {
 public:
  explicit QueryClient(ClientOptions options);

  /// Runs one query to completion under the retry policy. Returns the
  /// server's decoded response (including error and Overloaded responses —
  /// inspect QueryResponse::status) or the final transport error.
  Result<QueryResponse> Query(const QueryRequest& request) const;

  /// A single attempt, no retries (exposed for tests and the bench harness
  /// overload phase, which must observe raw shed/reject behaviour).
  Result<QueryResponse> QueryOnce(const QueryRequest& request) const;

  /// The backoff delay before retry attempt `attempt` (1-based), in ms —
  /// the schedule Query() sleeps. Exposed so tests pin the cap and curve.
  static int64_t BackoffDelayMs(const ClientOptions& options, int attempt);

  const ClientOptions& options() const { return options_; }

 private:
  ClientOptions options_;
};

/// Client for the QueryServer's admin/telemetry listener (AdminVerb
/// protocol). One connect/request/response exchange per call, no retries —
/// pollers own their own cadence and a missed scrape is data, not a failure
/// to paper over. Stateless between calls; shareable across threads.
class AdminClient {
 public:
  /// `options.port` must be the server's admin_port(); the retry/backoff
  /// fields are ignored.
  explicit AdminClient(ClientOptions options);

  /// Runs one admin exchange. Returns the decoded response (including
  /// error responses — inspect AdminResponse::status) or the transport
  /// error.
  Result<AdminResponse> Call(const AdminRequest& request) const;

  /// Call() + status check: the response body on kWireOk, the wire error
  /// as a Status otherwise.
  Result<std::string> Fetch(AdminVerb verb, int64_t arg = 0) const;

  const ClientOptions& options() const { return options_; }

 private:
  ClientOptions options_;
};

}  // namespace htl::net

#endif  // HTL_NET_CLIENT_H_
