#include "net/frame.h"

#include <cstring>

#include "util/string_util.h"

namespace htl::net {

namespace {

/// Hard cap on hits in one response, independent of the frame cap: a hostile
/// num_hits prefix must not drive a huge reserve before truncation is
/// noticed. 32 bytes per hit keeps this consistent with kDefaultMaxFrameBytes.
constexpr uint32_t kMaxWireHits = kDefaultMaxFrameBytes / 32;

}  // namespace

bool IsValidQueryKind(uint8_t kind) {
  return kind <= static_cast<uint8_t>(QueryKind::kSql);
}

bool IsValidAdminVerb(uint8_t verb) {
  return verb <= static_cast<uint8_t>(AdminVerb::kTrace);
}

WireStatus WireStatusFromCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return WireStatus::kWireOk;
    case StatusCode::kInvalidArgument:
    case StatusCode::kNotFound:
    case StatusCode::kAlreadyExists:
    case StatusCode::kOutOfRange:
    case StatusCode::kFailedPrecondition:
      return WireStatus::kWireInvalidArgument;
    case StatusCode::kParseError:
      return WireStatus::kWireParseError;
    case StatusCode::kDeadlineExceeded:
      return WireStatus::kWireDeadlineExceeded;
    case StatusCode::kCancelled:
      return WireStatus::kWireCancelled;
    case StatusCode::kResourceExhausted:
      return WireStatus::kWireResourceExhausted;
    case StatusCode::kUnavailable:
      return WireStatus::kWireOverloaded;
    case StatusCode::kUnimplemented:
      return WireStatus::kWireUnimplemented;
    case StatusCode::kInternal:
      return WireStatus::kWireInternal;
  }
  return WireStatus::kWireInternal;
}

Status StatusFromWire(WireStatus wire, std::string message) {
  switch (wire) {
    case WireStatus::kWireOk:
      return Status::OK();
    case WireStatus::kWireInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case WireStatus::kWireParseError:
      return Status::ParseError(std::move(message));
    case WireStatus::kWireDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case WireStatus::kWireCancelled:
      return Status::Cancelled(std::move(message));
    case WireStatus::kWireResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case WireStatus::kWireOverloaded:
      return Status::Unavailable(std::move(message));
    case WireStatus::kWireUnimplemented:
      return Status::Unimplemented(std::move(message));
    case WireStatus::kWireInternal:
      return Status::Internal(std::move(message));
  }
  return Status::Internal(std::move(message));
}

void ByteWriter::U8(uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

void ByteWriter::U32(uint32_t v) {
  char buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  bytes_.append(buf, 4);
}

void ByteWriter::I32(int32_t v) { U32(static_cast<uint32_t>(v)); }

void ByteWriter::I64(int64_t v) {
  const auto u = static_cast<uint64_t>(v);
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>((u >> (8 * i)) & 0xFF);
  bytes_.append(buf, 8);
}

void ByteWriter::F64(double v) {
  static_assert(sizeof(double) == 8, "wire doubles are 8 bytes");
  char buf[8];
  std::memcpy(buf, &v, 8);  // IEEE-754 little-endian hosts only.
  bytes_.append(buf, 8);
}

void ByteWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  bytes_.append(s.data(), s.size());
}

bool ByteReader::Raw(void* out, size_t n) {
  if (remaining() < n) return false;
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool ByteReader::U8(uint8_t* out) { return Raw(out, 1); }

bool ByteReader::U32(uint32_t* out) {
  uint8_t buf[4];
  if (!Raw(buf, 4)) return false;
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | buf[i];
  *out = v;
  return true;
}

bool ByteReader::I32(int32_t* out) {
  uint32_t u = 0;
  if (!U32(&u)) return false;
  *out = static_cast<int32_t>(u);
  return true;
}

bool ByteReader::I64(int64_t* out) {
  uint8_t buf[8];
  if (!Raw(buf, 8)) return false;
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  *out = static_cast<int64_t>(v);
  return true;
}

bool ByteReader::F64(double* out) {
  uint8_t buf[8];
  if (!Raw(buf, 8)) return false;
  std::memcpy(out, buf, 8);
  return true;
}

bool ByteReader::Str(std::string* out) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  if (remaining() < len) return false;  // Hostile length prefix: no alloc.
  out->assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

std::string EncodeRequest(const QueryRequest& request) {
  ByteWriter w;
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(request.kind));
  w.U8(request.use_cache ? 1 : 0);
  w.U8(request.flags);
  w.I32(request.level);
  w.I32(request.parallelism);
  w.I64(request.k);
  w.I64(request.deadline_ms);
  w.Str(request.query_text);
  return w.Take();
}

Result<QueryRequest> DecodeRequest(std::string_view body) {
  ByteReader r(body);
  uint8_t version = 0, kind = 0, use_cache = 0, flags = 0;
  QueryRequest req;
  if (!r.U8(&version) || !r.U8(&kind) || !r.U8(&use_cache) || !r.U8(&flags) ||
      !r.I32(&req.level) || !r.I32(&req.parallelism) || !r.I64(&req.k) ||
      !r.I64(&req.deadline_ms) || !r.Str(&req.query_text)) {
    return Status::ParseError("truncated request frame");
  }
  if (!r.exhausted()) {
    return Status::ParseError(
        StrCat("request frame has ", r.remaining(), " trailing byte(s)"));
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported protocol version ", static_cast<int>(version),
               " (speak ", static_cast<int>(kProtocolVersion), ")"));
  }
  if (!IsValidQueryKind(kind)) {
    return Status::InvalidArgument(
        StrCat("unknown query kind ", static_cast<int>(kind)));
  }
  req.kind = static_cast<QueryKind>(kind);
  req.use_cache = use_cache != 0;
  req.flags = flags;
  return req;
}

std::string EncodeResponse(const QueryResponse& response) {
  ByteWriter w;
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(response.status));
  w.U8(response.flags);
  w.I64(response.videos_evaluated);
  w.I64(response.videos_failed);
  w.U32(static_cast<uint32_t>(response.hits.size()));
  for (const WireHit& hit : response.hits) {
    w.I64(hit.video);
    w.I64(hit.segment);
    w.F64(hit.actual);
    w.F64(hit.max);
  }
  w.Str(response.message);
  return w.Take();
}

Result<QueryResponse> DecodeResponse(std::string_view body) {
  ByteReader r(body);
  uint8_t version = 0, status = 0;
  QueryResponse resp;
  uint32_t num_hits = 0;
  if (!r.U8(&version) || !r.U8(&status) || !r.U8(&resp.flags) ||
      !r.I64(&resp.videos_evaluated) || !r.I64(&resp.videos_failed) ||
      !r.U32(&num_hits)) {
    return Status::ParseError("truncated response frame");
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported protocol version ", static_cast<int>(version)));
  }
  if (status > static_cast<uint8_t>(WireStatus::kWireInternal)) {
    return Status::ParseError(
        StrCat("unknown wire status ", static_cast<int>(status)));
  }
  if (num_hits > kMaxWireHits || r.remaining() / 32 < num_hits) {
    return Status::ParseError(
        StrCat("hit count ", num_hits, " exceeds the frame's capacity"));
  }
  resp.status = static_cast<WireStatus>(status);
  resp.hits.reserve(num_hits);
  for (uint32_t i = 0; i < num_hits; ++i) {
    WireHit hit;
    if (!r.I64(&hit.video) || !r.I64(&hit.segment) || !r.F64(&hit.actual) ||
        !r.F64(&hit.max)) {
      return Status::ParseError("truncated response hit list");
    }
    resp.hits.push_back(hit);
  }
  if (!r.Str(&resp.message)) {
    return Status::ParseError("truncated response message");
  }
  if (!r.exhausted()) {
    return Status::ParseError(
        StrCat("response frame has ", r.remaining(), " trailing byte(s)"));
  }
  return resp;
}

std::string EncodeAdminRequest(const AdminRequest& request) {
  ByteWriter w;
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(request.verb));
  w.I64(request.arg);
  return w.Take();
}

Result<AdminRequest> DecodeAdminRequest(std::string_view body) {
  ByteReader r(body);
  uint8_t version = 0, verb = 0;
  AdminRequest req;
  if (!r.U8(&version) || !r.U8(&verb) || !r.I64(&req.arg)) {
    return Status::ParseError("truncated admin request frame");
  }
  if (!r.exhausted()) {
    return Status::ParseError(
        StrCat("admin request frame has ", r.remaining(), " trailing byte(s)"));
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported protocol version ", static_cast<int>(version),
               " (speak ", static_cast<int>(kProtocolVersion), ")"));
  }
  if (!IsValidAdminVerb(verb)) {
    return Status::InvalidArgument(
        StrCat("unknown admin verb ", static_cast<int>(verb)));
  }
  req.verb = static_cast<AdminVerb>(verb);
  return req;
}

std::string EncodeAdminResponse(const AdminResponse& response) {
  ByteWriter w;
  w.U8(kProtocolVersion);
  w.U8(static_cast<uint8_t>(response.status));
  w.Str(response.body);
  return w.Take();
}

Result<AdminResponse> DecodeAdminResponse(std::string_view body) {
  ByteReader r(body);
  uint8_t version = 0, status = 0;
  AdminResponse resp;
  if (!r.U8(&version) || !r.U8(&status) || !r.Str(&resp.body)) {
    return Status::ParseError("truncated admin response frame");
  }
  if (!r.exhausted()) {
    return Status::ParseError(StrCat("admin response frame has ",
                                     r.remaining(), " trailing byte(s)"));
  }
  if (version != kProtocolVersion) {
    return Status::InvalidArgument(
        StrCat("unsupported protocol version ", static_cast<int>(version)));
  }
  if (status > static_cast<uint8_t>(WireStatus::kWireInternal)) {
    return Status::ParseError(
        StrCat("unknown wire status ", static_cast<int>(status)));
  }
  resp.status = static_cast<WireStatus>(status);
  return resp;
}

Result<std::string> FrameMessage(std::string_view body,
                                 uint32_t max_frame_bytes) {
  if (body.size() > max_frame_bytes) {
    return Status::InvalidArgument(
        StrCat("frame body of ", body.size(), " bytes exceeds the cap of ",
               max_frame_bytes));
  }
  ByteWriter w;
  w.U32(kFrameMagic);
  w.U32(static_cast<uint32_t>(body.size()));
  std::string out = w.Take();
  out.append(body.data(), body.size());
  return out;
}

Result<uint32_t> CheckFrameHeader(const uint8_t header[kFrameHeaderBytes],
                                  uint32_t max_frame_bytes) {
  uint32_t magic = 0, length = 0;
  for (int i = 3; i >= 0; --i) magic = (magic << 8) | header[i];
  for (int i = 7; i >= 4; --i) length = (length << 8) | header[i];
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic (not an htl query frame)");
  }
  if (length > max_frame_bytes) {
    return Status::ResourceExhausted(
        StrCat("frame of ", length, " bytes exceeds the cap of ",
               max_frame_bytes));
  }
  return length;
}

}  // namespace htl::net
