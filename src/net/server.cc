#include "net/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "htl/fingerprint.h"
#include "htl/parser.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "sim/topk.h"
#include "sql/sql_system.h"
#include "util/fault_point.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace htl::net {

namespace {

/// Accept-loop poll tick: how quickly Shutdown() is observed.
constexpr int64_t kAcceptTickMs = 20;

/// Hard bound on the post-cancel drain wait. Cancelled sessions unwind in
/// milliseconds (engines poll their context, sockets are shut down); this
/// only bounds the wait against bugs, so Shutdown can report a leak
/// instead of hanging.
constexpr int64_t kCancelledDrainSlackMs = 10'000;

QueryResponse ErrorResponse(const Status& status) {
  QueryResponse resp;
  resp.status = WireStatusFromCode(status.code());
  resp.message = status.message();
  return resp;
}

QueryResponse OverloadedResponse(const char* why) {
  QueryResponse resp;
  resp.status = WireStatus::kWireOverloaded;
  resp.message = why;
  return resp;
}

AdminResponse AdminError(const Status& status) {
  AdminResponse resp;
  resp.status = WireStatusFromCode(status.code());
  resp.body = status.message();
  return resp;
}

/// Sums a stat over every span named `name` in the profile (the per-video
/// spans each carry their own rows/tables; ExecContext budgets reset per
/// unit, so the request total only exists as this sum).
int64_t SumOverSpans(const obs::QueryProfile& profile, std::string_view name,
                     int64_t obs::OpStats::*field) {
  int64_t total = 0;
  const auto walk = [&](const auto& self,
                        const obs::QueryProfile::Node& node) -> void {
    if (node.name == name) total += node.stats.*field;
    for (const obs::QueryProfile::Node& child : node.children) {
      self(self, child);
    }
  };
  for (const obs::QueryProfile::Node& root : profile.roots) walk(walk, root);
  return total;
}

}  // namespace

QueryServer::QueryServer(const MetadataStore* store, ServerOptions options)
    : store_(store),
      options_(std::move(options)),
      query_log_(options_.query_log) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.soft_watermark <= 0) {
    options_.soft_watermark = options_.worker_threads;
  }
  if (options_.hard_watermark <= 0) {
    options_.hard_watermark =
        4 * std::max<int64_t>(options_.soft_watermark, options_.worker_threads);
  }
  // The soft band must be inside the hard band for the state machine
  // degrade -> reject to make sense.
  options_.hard_watermark =
      std::max(options_.hard_watermark, options_.soft_watermark);
  if (options_.max_hits < 1) options_.max_hits = 1;

  if (options_.watchdog_stall_ms == 0) {
    // No healthy session outlives its transport deadlines plus the default
    // evaluation budget; past that it is stuck, not slow.
    watchdog_bound_ms_ = options_.read_timeout_ms + options_.write_timeout_ms +
                         options_.default_deadline_ms + 1000;
  } else {
    watchdog_bound_ms_ = options_.watchdog_stall_ms;  // < 0 disables.
  }

  auto& metrics = obs::MetricsRegistry::Instance();
  accepted_ = metrics.GetCounter("net.accepted");
  rejected_ = metrics.GetCounter("net.rejected_overload");
  shed_degraded_ = metrics.GetCounter("net.shed_degraded");
  frame_errors_ = metrics.GetCounter("net.frame_errors");
  responses_ok_ = metrics.GetCounter("net.responses_ok");
  responses_error_ = metrics.GetCounter("net.responses_error");
  admin_requests_ = metrics.GetCounter("net.admin.requests");
  admin_errors_ = metrics.GetCounter("net.admin.errors");
  watchdog_stalls_ = metrics.GetCounter("net.watchdog.stalls");
  in_flight_gauge_ = metrics.GetGauge("net.in_flight");
  stalled_gauge_ = metrics.GetGauge("net.watchdog.stalled_sessions");
  latency_us_ = metrics.GetHistogram(
      "net.request.latency_us",
      obs::Histogram::ExponentialBounds(100, 2.0, 18));
  decode_us_ = metrics.GetHistogram(
      "net.request.decode_us", obs::Histogram::ExponentialBounds(10, 2.0, 18));
  execute_us_ = metrics.GetHistogram(
      "net.request.execute_us",
      obs::Histogram::ExponentialBounds(100, 2.0, 18));
  encode_us_ = metrics.GetHistogram(
      "net.request.encode_us", obs::Histogram::ExponentialBounds(10, 2.0, 18));
}

QueryServer::~QueryServer() {
  if (started_.load(std::memory_order_acquire)) {
    Shutdown().IgnoreError();  // Destructor cannot report; Shutdown logged.
  }
}

Status QueryServer::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("QueryServer::Start called twice");
  }
  HTL_ASSIGN_OR_RETURN(listener_,
                       ListenOnLoopback(options_.port, options_.accept_backlog));
  HTL_ASSIGN_OR_RETURN(port_, LocalPort(listener_));
  // The admin plane binds its own socket: the query listener's admission
  // control never sees (and so can never shed) a telemetry scrape.
  HTL_ASSIGN_OR_RETURN(
      admin_listener_,
      ListenOnLoopback(options_.admin_port, options_.accept_backlog));
  HTL_ASSIGN_OR_RETURN(admin_port_, LocalPort(admin_listener_));
  started_at_ = std::chrono::steady_clock::now();

  ThreadPool::Options pool_options;
  // +2: the accept loop and the admin loop each pin a worker.
  pool_options.num_threads = options_.worker_threads + 2;
  // The accept loop rejects past the hard watermark, so at most
  // hard_watermark sessions are ever queued or running; with this capacity
  // Schedule() never blocks the accept loop.
  pool_options.queue_capacity = options_.hard_watermark + 3;
  pool_ = std::make_unique<ThreadPool>(pool_options);

  running_.store(true, std::memory_order_release);
  pool_->Schedule([this] { AcceptLoop(); });
  pool_->Schedule([this] { AdminLoop(); });
  return Status::OK();
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto conn = Accept(listener_, DeadlineAfterMs(kAcceptTickMs));
    if (!conn.ok()) {
      if (conn.status().IsDeadlineExceeded()) continue;  // Idle tick.
      if (conn.status().IsUnavailable()) break;  // Listener shut down.
      // Transient accept failure (e.g. fd pressure): keep serving.
      frame_errors_->Increment();
      continue;
    }

    // net.accept: an injected fault here models accept-time breakage (fd
    // exhaustion, a peer that vanished); the connection is dropped and the
    // loop keeps serving.
    if (FaultRegistry::Armed()) {
      const Status fault = FaultRegistry::Instance().Hit("net.accept");
      if (!fault.ok()) {
        frame_errors_->Increment();
        continue;  // conn closes via RAII.
      }
    }

    const int64_t admitted =
        in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (admitted > options_.hard_watermark ||
        stopping_.load(std::memory_order_acquire)) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_->Increment();
      // Refuse explicitly: drain whatever request bytes already arrived
      // (so the close does not RST the response away), answer Overloaded,
      // close. The accept loop never blocks on this peer — DrainPending
      // does not wait and the response write has a short deadline.
      DrainPending(*conn, options_.max_frame_bytes);
      WriteResponseBestEffort(*conn, OverloadedResponse(
          stopping_.load(std::memory_order_acquire)
              ? "server draining"
              : "overloaded: in-flight limit reached"));
      continue;
    }

    accepted_->Increment();
    in_flight_gauge_->Set(admitted);
    const uint64_t id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    auto socket = std::make_shared<Socket>(std::move(*conn));
    pool_->Schedule([this, id, socket] { RunSession(id, socket); });
  }

  // The listener is closed by Shutdown *after* this flag flips — closing
  // it here would race Shutdown's concurrent ShutdownBoth() on the fd.
  MutexLock lock(&mu_);
  accept_loop_done_ = true;
  drained_cv_.NotifyAll();
}

void QueryServer::RunSession(uint64_t session_id,
                             const std::shared_ptr<Socket>& socket) {
  // Registered for the whole session so the drain path can reach the
  // socket (and the watchdog can age it); the context pointer joins once
  // the request is decoded.
  {
    MutexLock lock(&mu_);
    live_[session_id] =
        LiveSession{socket.get(), nullptr, std::chrono::steady_clock::now(),
                    /*stalled=*/false};
  }

  ServeOneRequest(session_id, *socket);

  {
    MutexLock lock(&mu_);
    auto it = live_.find(session_id);
    if (it != live_.end()) {
      if (it->second.stalled) {
        // The stall resolved itself after all: healthz heals.
        --stalled_sessions_;
        stalled_gauge_->Set(stalled_sessions_);
      }
      live_.erase(it);
    }
  }
  const int64_t remaining =
      in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  in_flight_gauge_->Set(remaining);
  drained_cv_.NotifyAll();
}

void QueryServer::ServeOneRequest(uint64_t session_id, const Socket& socket) {
  obs::QueryLogRecord record;
  record.kind = 0xFF;  // Stays 0xFF unless a request actually decodes.
  obs::QueryProfile profile;
  const WallTimer total;
  ServeRequestOnSocket(session_id, socket, &record, &profile);
  // Every exit of the exchange — answered, refused, or dropped — lands one
  // wide event and one total-latency observation (the tools/lint.py
  // net-wide-event rule pins this invariant).
  record.total_us = total.ElapsedMicros();
  latency_us_->Observe(record.total_us);
  RecordWideEvent(std::move(record), std::move(profile));
}

void QueryServer::ServeRequestOnSocket(uint64_t session_id,
                                       const Socket& socket,
                                       obs::QueryLogRecord* record,
                                       obs::QueryProfile* profile) {
  // --- Read the request frame under the read deadline. ------------------
  const SocketDeadline read_deadline =
      DeadlineAfterMs(options_.read_timeout_ms);
  const WallTimer decode_timer;

  Status torn = Status::OK();
  if (FaultRegistry::Armed()) {
    // net.read_frame: models a torn/stalled inbound frame.
    torn = FaultRegistry::Instance().Hit("net.read_frame");
  }

  uint8_t header[kFrameHeaderBytes];
  if (torn.ok()) {
    torn = ReadFull(socket, header, sizeof(header), read_deadline);
  }
  if (!torn.ok()) {
    // Nothing trustworthy arrived (timeout, torn read, or injected fault):
    // there is no request to answer, so the only clean move is to close.
    frame_errors_->Increment();
    record->wire_status = static_cast<uint8_t>(WireStatusFromCode(torn.code()));
    return;
  }

  auto body_len = CheckFrameHeader(header, options_.max_frame_bytes);
  if (!body_len.ok()) {
    // Bad magic or oversized length: the header itself was readable, so an
    // explicit error response is possible before closing.
    frame_errors_->Increment();
    const QueryResponse error = ErrorResponse(body_len.status());
    record->wire_status = static_cast<uint8_t>(error.status);
    WriteResponseBestEffort(socket, error);
    return;
  }
  std::string body(*body_len, '\0');
  if (*body_len > 0) {
    const Status read =
        ReadFull(socket, body.data(), body.size(), read_deadline);
    if (!read.ok()) {
      frame_errors_->Increment();  // Slow loris or torn body: drop.
      record->wire_status =
          static_cast<uint8_t>(WireStatusFromCode(read.code()));
      return;
    }
  }

  auto request = DecodeRequest(body);
  record->decode_us = decode_timer.ElapsedMicros();
  decode_us_->Observe(record->decode_us);
  if (!request.ok()) {
    frame_errors_->Increment();
    const QueryResponse error = ErrorResponse(request.status());
    record->wire_status = static_cast<uint8_t>(error.status);
    WriteResponseBestEffort(socket, error);
    return;
  }

  record->kind = static_cast<uint8_t>(request->kind);
  record->fingerprint = FingerprintKey(request->query_text);
  record->query = request->query_text;
  record->level = request->level;
  record->k = request->k;
  record->use_cache = request->use_cache;
  record->deadline_ms = request->deadline_ms > 0
                            ? request->deadline_ms
                            : options_.default_deadline_ms;

  // --- Admission: decide the shedding band for this request. ------------
  QueryResponse response;
  const WallTimer exec_timer;
  if (drain_cancelled_.load(std::memory_order_acquire)) {
    response = OverloadedResponse("server draining");
  } else {
    const bool degraded = in_flight_.load(std::memory_order_acquire) >
                          options_.soft_watermark;
    if (degraded) shed_degraded_->Increment();

    // Budget mapping: the client's deadline becomes the context deadline,
    // so evaluation is cancelled server-side when the budget expires.
    ExecContext ctx(degraded ? options_.shed_budgets : ExecBudgets{});
    ctx.SetTimeoutMs(record->deadline_ms);
    {
      MutexLock lock(&mu_);
      auto it = live_.find(session_id);
      if (it != live_.end()) it->second.ctx = &ctx;
    }

    Status injected = Status::OK();
    if (FaultRegistry::Armed()) {
      // net.session: an injected session-scope failure surfaces as a
      // well-formed error response (never a dropped connection).
      injected = FaultRegistry::Instance().Hit("net.session");
    }
    response = injected.ok() ? HandleRequest(*request, degraded, &ctx, profile)
                             : ErrorResponse(injected);

    // A degraded-mode ResourceExhausted was caused by the *shed* budgets,
    // not by the request (un-shed requests run with unlimited budgets):
    // report it as the retryable Overloaded refusal it really is, so
    // clients back off and retry instead of treating the query as broken.
    if (degraded && response.status == WireStatus::kWireResourceExhausted) {
      response = OverloadedResponse(
          "degraded-mode budget exhausted; retry when load clears");
      response.flags |= kFlagDegraded;
    }

    // The context dies with this scope: unhook it from the drain path
    // first (Cancel after this point would be a use-after-free).
    {
      MutexLock lock(&mu_);
      auto it = live_.find(session_id);
      if (it != live_.end()) it->second.ctx = nullptr;
    }
  }
  record->execute_us = exec_timer.ElapsedMicros();
  execute_us_->Observe(record->execute_us);

  // --- Write the response frame under the write deadline. ---------------
  const WallTimer encode_timer;
  if (FaultRegistry::Armed()) {
    // net.write_frame: models a peer that vanished mid-response — the
    // session closes without writing and the server carries on.
    if (!FaultRegistry::Instance().Hit("net.write_frame").ok()) {
      frame_errors_->Increment();
      record->wire_status = static_cast<uint8_t>(response.status);
      return;
    }
  }

  std::string resp_body = EncodeResponse(response);
  auto framed = FrameMessage(resp_body, options_.max_frame_bytes);
  if (!framed.ok()) {
    // Response overflowed the frame cap (huge k + profile text): degrade
    // to a hit-less error response rather than a torn frame.
    response = ErrorResponse(Status::ResourceExhausted(
        "response exceeded the frame cap; lower k or drop want_profile"));
    resp_body = EncodeResponse(response);
    framed = FrameMessage(resp_body, options_.max_frame_bytes);
    if (!framed.ok()) {
      // Even the error response overflows (a deliberately tiny cap):
      // closing without a frame is the only well-formed move left.
      frame_errors_->Increment();
      record->wire_status = static_cast<uint8_t>(response.status);
      return;
    }
  }

  // The response is final: its truth belongs in the wide event whether or
  // not the peer sticks around to read it.
  record->wire_status = static_cast<uint8_t>(response.status);
  record->degraded = response.degraded();
  record->partial = response.partial();
  record->videos_evaluated = response.videos_evaluated;
  record->videos_failed = response.videos_failed;

  const Status written =
      WriteFull(socket, framed->data(), framed->size(),
                DeadlineAfterMs(options_.write_timeout_ms));
  record->encode_us = encode_timer.ElapsedMicros();
  encode_us_->Observe(record->encode_us);
  if (!written.ok()) {
    frame_errors_->Increment();  // Peer gone or not draining: drop.
    return;
  }
  if (response.ok()) {
    responses_ok_->Increment();
  } else {
    responses_error_->Increment();
  }
}

void QueryServer::RecordWideEvent(obs::QueryLogRecord record,
                                  obs::QueryProfile profile) {
  if (!profile.empty()) {
    if (const obs::QueryProfile::Node* classify =
            profile.Find("stage.classify")) {
      record.formula_class = classify->note;
    }
    if (const obs::QueryProfile::Node* cache = profile.Find("cache.lookup")) {
      record.cache_hit = cache->note == "hit";
    }
    // ExecContext budgets reset per video, so request-total work only
    // exists as the sum over the per-video spans.
    record.rows = SumOverSpans(profile, "video", &obs::OpStats::rows);
    record.tables = SumOverSpans(profile, "video", &obs::OpStats::tables);
  }
  query_log_.Record(std::move(record), std::move(profile));
}

QueryResponse QueryServer::HandleRequest(const QueryRequest& request,
                                         bool degraded, ExecContext* ctx,
                                         obs::QueryProfile* profile) {
  QueryResponse response;
  switch (request.kind) {
    case QueryKind::kHtlSegments:
    case QueryKind::kHtlVideos:
      response = HandleHtl(request, ctx, profile);
      break;
    case QueryKind::kSql:
      response = HandleSql(request, ctx, profile);
      break;
  }
  if (degraded) response.flags |= kFlagDegraded;
  return response;
}

QueryResponse QueryServer::HandleHtl(const QueryRequest& request,
                                     ExecContext* ctx,
                                     obs::QueryProfile* profile) {
  if (request.k <= 0) {
    return ErrorResponse(Status::InvalidArgument("k must be positive"));
  }
  const int64_t k = std::min(request.k, options_.max_hits);
  Retriever* retriever =
      RetrieverFor(request.use_cache, request.parallelism == 1);

  auto formula = retriever->Prepare(request.query_text);
  if (!formula.ok()) return ErrorResponse(formula.status());

  const bool want_profile = (request.flags & kFlagWantProfile) != 0;
  // trace_requests runs every request profiled so the query log can retain
  // full traces for the slow ones (the client only *sees* the profile text
  // when it asked for it).
  const bool traced = want_profile || options_.trace_requests;
  QueryResponse response;

  if (request.kind == QueryKind::kHtlSegments) {
    auto result = traced
                      ? retriever->TopSegmentsProfiled(**formula,
                                                       request.level, k, ctx)
                      : retriever->TopSegmentsWithReport(**formula,
                                                         request.level, k, ctx);
    if (!result.ok()) return ErrorResponse(result.status());
    for (const SegmentHit& hit : result->hits) {
      response.hits.push_back(
          WireHit{hit.video, hit.segment, hit.sim.actual, hit.sim.max});
    }
    FillReport(result->report, want_profile, &response);
    if (profile != nullptr) *profile = std::move(result->report.profile);
  } else {
    auto result = traced ? retriever->TopVideosProfiled(**formula, k, ctx)
                         : retriever->TopVideosWithReport(**formula, k, ctx);
    if (!result.ok()) return ErrorResponse(result.status());
    for (const VideoHit& hit : result->hits) {
      response.hits.push_back(
          WireHit{hit.video, 0, hit.sim.actual, hit.sim.max});
    }
    FillReport(result->report, want_profile, &response);
    if (profile != nullptr) *profile = std::move(result->report.profile);
  }
  return response;
}

void QueryServer::FillReport(const RetrievalReport& report, bool want_profile,
                             QueryResponse* response) {
  response->videos_evaluated = report.videos_evaluated;
  response->videos_failed = report.videos_failed;
  if (!report.complete()) {
    response->flags |= kFlagPartial;
    response->message = report.ToString();
  }
  if (want_profile) response->message = report.profile.ToText();
}

QueryResponse QueryServer::HandleSql(const QueryRequest& request,
                                     ExecContext* ctx,
                                     obs::QueryProfile* profile) {
  if (options_.sql_inputs.empty() || options_.sql_n <= 0) {
    return ErrorResponse(Status::Unimplemented(
        "this server has no SQL input relations configured"));
  }
  if (request.k <= 0) {
    return ErrorResponse(Status::InvalidArgument("k must be positive"));
  }

  // The SQL system has no Profiled entry point; attach a trace to the
  // session context here so the slowlog gets stage spans for kSql too.
  obs::QueryTrace trace;
  obs::QueryTrace* tr = nullptr;
  obs::QueryTrace* saved = nullptr;
  if (options_.trace_requests && ctx != nullptr) {
    tr = &trace;
    saved = ctx->trace();
    ctx->set_trace(tr);
  }
  obs::ScopedTraceAttach attach(tr);
  QueryResponse response = [&] {
    FormulaPtr formula;
    {
      HTL_OBS_SPAN(span, tr, "stage.parse");
      auto parsed = ParseFormula(request.query_text);
      if (!parsed.ok()) return ErrorResponse(parsed.status());
      formula = std::move(*parsed);
    }

    HTL_OBS_SPAN(span, tr, "stage.execute");
    sql::SqlSystem system;
    system.executor().set_exec_context(ctx);
    auto list =
        system.Evaluate(*formula, options_.sql_inputs, options_.sql_n);
    if (!list.ok()) return ErrorResponse(list.status());

    QueryResponse resp;
    const int64_t k = std::min(request.k, options_.max_hits);
    for (const RankedSegment& seg : TopKSegments(*list, k)) {
      resp.hits.push_back(WireHit{0, seg.id, seg.sim.actual, seg.sim.max});
    }
    resp.videos_evaluated = 1;
    return resp;
  }();
  if (tr != nullptr) {
    ctx->set_trace(saved);
    if (profile != nullptr) *profile = trace.Finish();
  }
  return response;
}

Retriever* QueryServer::RetrieverFor(bool use_cache, bool serial) {
  const int index = (use_cache ? 2 : 0) + (serial ? 1 : 0);
  MutexLock lock(&retrievers_mu_);
  if (retrievers_[index] == nullptr) {
    QueryOptions opts = options_.query_options;
    opts.cache_mode = use_cache ? CacheMode::kReadWrite : CacheMode::kOff;
    if (serial) opts.parallelism = 1;
    retrievers_[index] = std::make_unique<Retriever>(store_, opts);
  }
  return retrievers_[index].get();
}

void QueryServer::AdminLoop() {
  while (!admin_stopping_.load(std::memory_order_acquire)) {
    auto conn = Accept(admin_listener_, DeadlineAfterMs(kAcceptTickMs));
    // The watchdog heartbeat rides the accept tick: it runs whether or not
    // anyone is scraping, so a stall is noticed within ~kAcceptTickMs.
    CheckStalls();
    if (!conn.ok()) {
      if (conn.status().IsDeadlineExceeded()) continue;  // Idle tick.
      if (conn.status().IsUnavailable()) break;  // Listener shut down.
      continue;  // Transient accept failure: keep serving.
    }

    // net.admin.accept: injected accept-time breakage on the admin plane;
    // the connection drops, the loop keeps serving.
    if (FaultRegistry::Armed()) {
      if (!FaultRegistry::Instance().Hit("net.admin.accept").ok()) {
        admin_errors_->Increment();
        continue;  // conn closes via RAII.
      }
    }
    // Served inline: admin answers are small, computed locally, and bounded
    // by the admin transport deadlines, so one loop thread is plenty — and
    // it can never be starved by query-side worker saturation.
    ServeAdminConn(*conn);
  }

  MutexLock lock(&mu_);
  admin_loop_done_ = true;
  drained_cv_.NotifyAll();
}

void QueryServer::ServeAdminConn(const Socket& socket) {
  const SocketDeadline read_deadline =
      DeadlineAfterMs(options_.admin_read_timeout_ms);

  Status torn = Status::OK();
  if (FaultRegistry::Armed()) {
    // net.admin.read_frame: a torn/stalled inbound admin frame.
    torn = FaultRegistry::Instance().Hit("net.admin.read_frame");
  }
  uint8_t header[kFrameHeaderBytes];
  if (torn.ok()) {
    torn = ReadFull(socket, header, sizeof(header), read_deadline);
  }
  if (!torn.ok()) {
    admin_errors_->Increment();  // Nothing trustworthy arrived: close.
    return;
  }

  AdminResponse response;
  auto body_len = CheckFrameHeader(header, options_.max_frame_bytes);
  if (!body_len.ok()) {
    admin_errors_->Increment();
    response = AdminError(body_len.status());
  } else {
    std::string body(*body_len, '\0');
    if (*body_len > 0) {
      const Status read =
          ReadFull(socket, body.data(), body.size(), read_deadline);
      if (!read.ok()) {
        admin_errors_->Increment();  // Slow loris on the admin port: drop.
        return;
      }
    }
    auto request = DecodeAdminRequest(body);
    if (!request.ok()) {
      admin_errors_->Increment();
      response = AdminError(request.status());
    } else {
      admin_requests_->Increment();
      response = HandleAdmin(*request);
    }
  }

  if (FaultRegistry::Armed()) {
    // net.admin.write_frame: the scraper vanished mid-answer.
    if (!FaultRegistry::Instance().Hit("net.admin.write_frame").ok()) {
      admin_errors_->Increment();
      return;
    }
  }
  auto framed =
      FrameMessage(EncodeAdminResponse(response), options_.max_frame_bytes);
  if (!framed.ok()) {
    // Answer larger than the frame cap (a giant slowlog under a tiny cap):
    // degrade to an explicit error rather than a torn frame.
    response = AdminError(Status::ResourceExhausted(
        "admin response exceeded the frame cap; lower the record count"));
    framed =
        FrameMessage(EncodeAdminResponse(response), options_.max_frame_bytes);
    if (!framed.ok()) {
      admin_errors_->Increment();
      return;
    }
  }
  WriteFull(socket, framed->data(), framed->size(),
            DeadlineAfterMs(options_.admin_write_timeout_ms))
      .IgnoreError();  // Best effort: the scraper may already be gone.
}

AdminResponse QueryServer::HandleAdmin(const AdminRequest& request) {
  AdminResponse response;
  switch (request.verb) {
    case AdminVerb::kMetricsText:
      response.body = obs::MetricsRegistry::Instance().Snapshot().ToText();
      break;
    case AdminVerb::kMetricsJson:
      response.body = obs::MetricsRegistry::Instance().Snapshot().ToJson();
      break;
    case AdminVerb::kHealthz:
      response.body = HealthzJson();
      break;
    case AdminVerb::kSlowlog: {
      const int64_t n = request.arg > 0 ? request.arg : 64;
      response.body = query_log_.ToJson(static_cast<size_t>(n));
      break;
    }
    case AdminVerb::kTrace: {
      const uint64_t id =
          request.arg > 0 ? static_cast<uint64_t>(request.arg) : 0;
      auto profile = query_log_.ProfileFor(id);
      if (profile == nullptr) {
        return AdminError(Status::NotFound(
            id == 0 ? std::string("no retained profile in the query log")
                    : StrCat("no retained profile for record ", id)));
      }
      response.body = obs::ProfileToChromeTrace(*profile);
      break;
    }
  }
  return response;
}

std::string QueryServer::HealthzJson() {
  const bool draining = stopping_.load(std::memory_order_acquire);
  const int64_t inflight = in_flight_.load(std::memory_order_acquire);
  const char* state = draining ? "draining"
                     : inflight > options_.soft_watermark ? "shedding"
                                                          : "accepting";
  int64_t stalled = 0;
  {
    MutexLock lock(&mu_);
    stalled = stalled_sessions_;
  }
  const double uptime =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          std::chrono::steady_clock::now() - started_at_)
          .count();
  // "healthy" is the watchdog's verdict alone — shedding and draining are
  // load states a balancer reads from "state", not liveness failures.
  return StrCat(
      "{\"state\": \"", state, "\", \"healthy\": ",
      stalled == 0 ? "true" : "false", ", \"in_flight\": ", inflight,
      ", \"soft_watermark\": ", options_.soft_watermark,
      ", \"hard_watermark\": ", options_.hard_watermark,
      ", \"stalled_sessions\": ", stalled,
      ", \"wide_events\": ", query_log_.total_recorded(),
      ", \"uptime_s\": ", FormatFixed(uptime, 3),
      ", \"query_port\": ", port_, ", \"admin_port\": ", admin_port_, "}");
}

void QueryServer::CheckStalls() {
  if (watchdog_bound_ms_ < 0) return;
  const auto now = std::chrono::steady_clock::now();
  const auto bound = std::chrono::milliseconds(watchdog_bound_ms_);
  MutexLock lock(&mu_);
  for (auto& [id, session] : live_) {
    if (!session.stalled && now - session.start > bound) {
      // Flagged once per session; the flag clears (and healthz heals) when
      // the session deregisters.
      session.stalled = true;
      ++stalled_sessions_;
      watchdog_stalls_->Increment();
      stalled_gauge_->Set(stalled_sessions_);
    }
  }
}

int64_t QueryServer::stalled_sessions() const {
  MutexLock lock(&mu_);
  return stalled_sessions_;
}

void QueryServer::WriteResponseBestEffort(const Socket& socket,
                                          const QueryResponse& response) {
  auto framed =
      FrameMessage(EncodeResponse(response), options_.max_frame_bytes);
  if (!framed.ok()) return;  // Cannot happen for hit-less responses.
  WriteFull(socket, framed->data(), framed->size(),
            DeadlineAfterMs(options_.write_timeout_ms))
      .IgnoreError();  // Best effort: the peer may already be gone.
}

Status QueryServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("QueryServer::Shutdown before Start");
  }
  // One drain at a time: a second caller (e.g. the destructor after an
  // explicit Shutdown) parks here and finds running_ already false.
  MutexLock shutdown_lock(&shutdown_mu_);
  if (!running_.load(std::memory_order_acquire)) return Status::OK();
  stopping_.store(true, std::memory_order_release);

  // Unblock the accept loop promptly (it also exits on its next tick).
  listener_.ShutdownBoth();

  // Phase 1 — stop accepting: wait for the accept loop to exit so no new
  // session can be admitted while we drain, then close the listener (safe
  // now: no other thread touches it).
  {
    MutexLock lock(&mu_);
    while (!accept_loop_done_) {
      drained_cv_.WaitFor(mu_, std::chrono::milliseconds(50));
    }
  }
  listener_.Close();

  // Phase 2 — natural drain: in-flight sessions get drain_deadline_ms to
  // finish on their own.
  const auto drain_deadline = DeadlineAfterMs(options_.drain_deadline_ms);
  {
    MutexLock lock(&mu_);
    while (in_flight_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      drained_cv_.WaitFor(mu_, std::chrono::milliseconds(10));
    }
  }

  // Phase 3 — cancel the stragglers: cooperative context cancellation for
  // sessions mid-evaluation, socket shutdown for sessions parked in
  // transport I/O. Sessions dequeued after this point answer "draining".
  drain_cancelled_.store(true, std::memory_order_release);
  {
    MutexLock lock(&mu_);
    for (auto& [id, session] : live_) {
      if (session.ctx != nullptr) session.ctx->Cancel();
      if (session.socket != nullptr) session.socket->ShutdownBoth();
    }
  }

  // Phase 4 — bounded wait for the cancelled sessions, then join.
  const auto cancel_deadline = DeadlineAfterMs(kCancelledDrainSlackMs);
  {
    MutexLock lock(&mu_);
    while (in_flight_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < cancel_deadline) {
      drained_cv_.WaitFor(mu_, std::chrono::milliseconds(10));
    }
  }
  const int64_t leaked = in_flight_.load(std::memory_order_acquire);
  if (leaked > 0) {
    // Do NOT destroy the pool with live sessions on it (their joins would
    // block forever); report the bug instead.
    return Status::Internal(
        StrCat("drain leaked ", leaked, " session(s) past the deadline"));
  }

  // Phase 5 — retire the telemetry plane last: the admin loop kept
  // answering (healthz state "draining") through phases 1-4, so a watcher
  // sees the drain happen instead of a dead port.
  admin_stopping_.store(true, std::memory_order_release);
  admin_listener_.ShutdownBoth();
  {
    MutexLock lock(&mu_);
    while (!admin_loop_done_) {
      drained_cv_.WaitFor(mu_, std::chrono::milliseconds(50));
    }
  }
  admin_listener_.Close();

  pool_.reset();  // Drains the (now empty) queue and joins every worker.
  running_.store(false, std::memory_order_release);
  return Status::OK();
}

}  // namespace htl::net
