#include "net/server.h"

#include <algorithm>
#include <utility>

#include "htl/parser.h"
#include "sim/topk.h"
#include "sql/sql_system.h"
#include "util/fault_point.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"

namespace htl::net {

namespace {

/// Accept-loop poll tick: how quickly Shutdown() is observed.
constexpr int64_t kAcceptTickMs = 20;

/// Hard bound on the post-cancel drain wait. Cancelled sessions unwind in
/// milliseconds (engines poll their context, sockets are shut down); this
/// only bounds the wait against bugs, so Shutdown can report a leak
/// instead of hanging.
constexpr int64_t kCancelledDrainSlackMs = 10'000;

QueryResponse ErrorResponse(const Status& status) {
  QueryResponse resp;
  resp.status = WireStatusFromCode(status.code());
  resp.message = status.message();
  return resp;
}

QueryResponse OverloadedResponse(const char* why) {
  QueryResponse resp;
  resp.status = WireStatus::kWireOverloaded;
  resp.message = why;
  return resp;
}

}  // namespace

QueryServer::QueryServer(const MetadataStore* store, ServerOptions options)
    : store_(store), options_(std::move(options)) {
  if (options_.worker_threads < 1) options_.worker_threads = 1;
  if (options_.soft_watermark <= 0) {
    options_.soft_watermark = options_.worker_threads;
  }
  if (options_.hard_watermark <= 0) {
    options_.hard_watermark =
        4 * std::max<int64_t>(options_.soft_watermark, options_.worker_threads);
  }
  // The soft band must be inside the hard band for the state machine
  // degrade -> reject to make sense.
  options_.hard_watermark =
      std::max(options_.hard_watermark, options_.soft_watermark);
  if (options_.max_hits < 1) options_.max_hits = 1;

  auto& metrics = obs::MetricsRegistry::Instance();
  accepted_ = metrics.GetCounter("net.accepted");
  rejected_ = metrics.GetCounter("net.rejected_overload");
  shed_degraded_ = metrics.GetCounter("net.shed_degraded");
  frame_errors_ = metrics.GetCounter("net.frame_errors");
  responses_ok_ = metrics.GetCounter("net.responses_ok");
  responses_error_ = metrics.GetCounter("net.responses_error");
  in_flight_gauge_ = metrics.GetGauge("net.in_flight");
  latency_us_ = metrics.GetHistogram(
      "net.request_latency_us",
      obs::Histogram::ExponentialBounds(100, 2.0, 18));
}

QueryServer::~QueryServer() {
  if (started_.load(std::memory_order_acquire)) {
    Shutdown().IgnoreError();  // Destructor cannot report; Shutdown logged.
  }
}

Status QueryServer::Start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition("QueryServer::Start called twice");
  }
  HTL_ASSIGN_OR_RETURN(listener_,
                       ListenOnLoopback(options_.port, options_.accept_backlog));
  HTL_ASSIGN_OR_RETURN(port_, LocalPort(listener_));

  ThreadPool::Options pool_options;
  pool_options.num_threads = options_.worker_threads + 1;  // +1: accept loop.
  // The accept loop rejects past the hard watermark, so at most
  // hard_watermark sessions are ever queued or running; with this capacity
  // Schedule() never blocks the accept loop.
  pool_options.queue_capacity = options_.hard_watermark + 2;
  pool_ = std::make_unique<ThreadPool>(pool_options);

  running_.store(true, std::memory_order_release);
  pool_->Schedule([this] { AcceptLoop(); });
  return Status::OK();
}

void QueryServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    auto conn = Accept(listener_, DeadlineAfterMs(kAcceptTickMs));
    if (!conn.ok()) {
      if (conn.status().IsDeadlineExceeded()) continue;  // Idle tick.
      if (conn.status().IsUnavailable()) break;  // Listener shut down.
      // Transient accept failure (e.g. fd pressure): keep serving.
      frame_errors_->Increment();
      continue;
    }

    // net.accept: an injected fault here models accept-time breakage (fd
    // exhaustion, a peer that vanished); the connection is dropped and the
    // loop keeps serving.
    if (FaultRegistry::Armed()) {
      const Status fault = FaultRegistry::Instance().Hit("net.accept");
      if (!fault.ok()) {
        frame_errors_->Increment();
        continue;  // conn closes via RAII.
      }
    }

    const int64_t admitted =
        in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (admitted > options_.hard_watermark ||
        stopping_.load(std::memory_order_acquire)) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      rejected_->Increment();
      // Refuse explicitly: drain whatever request bytes already arrived
      // (so the close does not RST the response away), answer Overloaded,
      // close. The accept loop never blocks on this peer — DrainPending
      // does not wait and the response write has a short deadline.
      DrainPending(*conn, options_.max_frame_bytes);
      WriteResponseBestEffort(*conn, OverloadedResponse(
          stopping_.load(std::memory_order_acquire)
              ? "server draining"
              : "overloaded: in-flight limit reached"));
      continue;
    }

    accepted_->Increment();
    in_flight_gauge_->Set(admitted);
    const uint64_t id =
        next_session_id_.fetch_add(1, std::memory_order_relaxed);
    auto socket = std::make_shared<Socket>(std::move(*conn));
    pool_->Schedule([this, id, socket] { RunSession(id, socket); });
  }

  // The listener is closed by Shutdown *after* this flag flips — closing
  // it here would race Shutdown's concurrent ShutdownBoth() on the fd.
  MutexLock lock(&mu_);
  accept_loop_done_ = true;
  drained_cv_.NotifyAll();
}

void QueryServer::RunSession(uint64_t session_id,
                             const std::shared_ptr<Socket>& socket) {
  // Registered for the whole session so the drain path can reach the
  // socket; the context pointer joins once the request is decoded.
  {
    MutexLock lock(&mu_);
    live_[session_id] = LiveSession{socket.get(), nullptr};
  }

  ServeOneRequest(session_id, *socket);

  {
    MutexLock lock(&mu_);
    live_.erase(session_id);
  }
  const int64_t remaining =
      in_flight_.fetch_sub(1, std::memory_order_acq_rel) - 1;
  in_flight_gauge_->Set(remaining);
  drained_cv_.NotifyAll();
}

void QueryServer::ServeOneRequest(uint64_t session_id, const Socket& socket) {
  // --- Read the request frame under the read deadline. ------------------
  const SocketDeadline read_deadline =
      DeadlineAfterMs(options_.read_timeout_ms);

  Status torn = Status::OK();
  if (FaultRegistry::Armed()) {
    // net.read_frame: models a torn/stalled inbound frame.
    torn = FaultRegistry::Instance().Hit("net.read_frame");
  }

  uint8_t header[kFrameHeaderBytes];
  if (torn.ok()) {
    torn = ReadFull(socket, header, sizeof(header), read_deadline);
  }
  if (!torn.ok()) {
    // Nothing trustworthy arrived (timeout, torn read, or injected fault):
    // there is no request to answer, so the only clean move is to close.
    frame_errors_->Increment();
    return;
  }

  auto body_len = CheckFrameHeader(header, options_.max_frame_bytes);
  if (!body_len.ok()) {
    // Bad magic or oversized length: the header itself was readable, so an
    // explicit error response is possible before closing.
    frame_errors_->Increment();
    WriteResponseBestEffort(socket, ErrorResponse(body_len.status()));
    return;
  }
  std::string body(*body_len, '\0');
  if (*body_len > 0) {
    const Status read =
        ReadFull(socket, body.data(), body.size(), read_deadline);
    if (!read.ok()) {
      frame_errors_->Increment();  // Slow loris or torn body: drop.
      return;
    }
  }

  auto request = DecodeRequest(body);
  if (!request.ok()) {
    frame_errors_->Increment();
    WriteResponseBestEffort(socket, ErrorResponse(request.status()));
    return;
  }

  // --- Admission: decide the shedding band for this request. ------------
  QueryResponse response;
  const WallTimer timer;
  if (drain_cancelled_.load(std::memory_order_acquire)) {
    response = OverloadedResponse("server draining");
  } else {
    const bool degraded = in_flight_.load(std::memory_order_acquire) >
                          options_.soft_watermark;
    if (degraded) shed_degraded_->Increment();

    // Budget mapping: the client's deadline becomes the context deadline,
    // so evaluation is cancelled server-side when the budget expires.
    ExecContext ctx(degraded ? options_.shed_budgets : ExecBudgets{});
    ctx.SetTimeoutMs(request->deadline_ms > 0 ? request->deadline_ms
                                              : options_.default_deadline_ms);
    {
      MutexLock lock(&mu_);
      auto it = live_.find(session_id);
      if (it != live_.end()) it->second.ctx = &ctx;
    }

    Status injected = Status::OK();
    if (FaultRegistry::Armed()) {
      // net.session: an injected session-scope failure surfaces as a
      // well-formed error response (never a dropped connection).
      injected = FaultRegistry::Instance().Hit("net.session");
    }
    response = injected.ok() ? HandleRequest(*request, degraded, &ctx)
                             : ErrorResponse(injected);

    // A degraded-mode ResourceExhausted was caused by the *shed* budgets,
    // not by the request (un-shed requests run with unlimited budgets):
    // report it as the retryable Overloaded refusal it really is, so
    // clients back off and retry instead of treating the query as broken.
    if (degraded && response.status == WireStatus::kWireResourceExhausted) {
      response = OverloadedResponse(
          "degraded-mode budget exhausted; retry when load clears");
      response.flags |= kFlagDegraded;
    }

    // The context dies with this scope: unhook it from the drain path
    // first (Cancel after this point would be a use-after-free).
    {
      MutexLock lock(&mu_);
      auto it = live_.find(session_id);
      if (it != live_.end()) it->second.ctx = nullptr;
    }
  }
  latency_us_->Observe(timer.ElapsedMicros());

  // --- Write the response frame under the write deadline. ---------------
  if (FaultRegistry::Armed()) {
    // net.write_frame: models a peer that vanished mid-response — the
    // session closes without writing and the server carries on.
    if (!FaultRegistry::Instance().Hit("net.write_frame").ok()) {
      frame_errors_->Increment();
      return;
    }
  }

  std::string resp_body = EncodeResponse(response);
  auto framed = FrameMessage(resp_body, options_.max_frame_bytes);
  if (!framed.ok()) {
    // Response overflowed the frame cap (huge k + profile text): degrade
    // to a hit-less error response rather than a torn frame.
    response = ErrorResponse(Status::ResourceExhausted(
        "response exceeded the frame cap; lower k or drop want_profile"));
    resp_body = EncodeResponse(response);
    framed = FrameMessage(resp_body, options_.max_frame_bytes);
    if (!framed.ok()) {
      // Even the error response overflows (a deliberately tiny cap):
      // closing without a frame is the only well-formed move left.
      frame_errors_->Increment();
      return;
    }
  }
  const Status written =
      WriteFull(socket, framed->data(), framed->size(),
                DeadlineAfterMs(options_.write_timeout_ms));
  if (!written.ok()) {
    frame_errors_->Increment();  // Peer gone or not draining: drop.
    return;
  }
  if (response.ok()) {
    responses_ok_->Increment();
  } else {
    responses_error_->Increment();
  }
}

QueryResponse QueryServer::HandleRequest(const QueryRequest& request,
                                         bool degraded, ExecContext* ctx) {
  QueryResponse response;
  switch (request.kind) {
    case QueryKind::kHtlSegments:
    case QueryKind::kHtlVideos:
      response = HandleHtl(request, ctx);
      break;
    case QueryKind::kSql:
      response = HandleSql(request, ctx);
      break;
  }
  if (degraded) response.flags |= kFlagDegraded;
  return response;
}

QueryResponse QueryServer::HandleHtl(const QueryRequest& request,
                                     ExecContext* ctx) {
  if (request.k <= 0) {
    return ErrorResponse(Status::InvalidArgument("k must be positive"));
  }
  const int64_t k = std::min(request.k, options_.max_hits);
  Retriever* retriever =
      RetrieverFor(request.use_cache, request.parallelism == 1);

  auto formula = retriever->Prepare(request.query_text);
  if (!formula.ok()) return ErrorResponse(formula.status());

  const bool want_profile = (request.flags & kFlagWantProfile) != 0;
  QueryResponse response;

  if (request.kind == QueryKind::kHtlSegments) {
    auto result = want_profile
                      ? retriever->TopSegmentsProfiled(**formula,
                                                       request.level, k, ctx)
                      : retriever->TopSegmentsWithReport(**formula,
                                                         request.level, k, ctx);
    if (!result.ok()) return ErrorResponse(result.status());
    for (const SegmentHit& hit : result->hits) {
      response.hits.push_back(
          WireHit{hit.video, hit.segment, hit.sim.actual, hit.sim.max});
    }
    FillReport(result->report, want_profile, &response);
  } else {
    auto result = want_profile
                      ? retriever->TopVideosProfiled(**formula, k, ctx)
                      : retriever->TopVideosWithReport(**formula, k, ctx);
    if (!result.ok()) return ErrorResponse(result.status());
    for (const VideoHit& hit : result->hits) {
      response.hits.push_back(
          WireHit{hit.video, 0, hit.sim.actual, hit.sim.max});
    }
    FillReport(result->report, want_profile, &response);
  }
  return response;
}

void QueryServer::FillReport(const RetrievalReport& report, bool want_profile,
                             QueryResponse* response) {
  response->videos_evaluated = report.videos_evaluated;
  response->videos_failed = report.videos_failed;
  if (!report.complete()) {
    response->flags |= kFlagPartial;
    response->message = report.ToString();
  }
  if (want_profile) response->message = report.profile.ToText();
}

QueryResponse QueryServer::HandleSql(const QueryRequest& request,
                                     ExecContext* ctx) {
  if (options_.sql_inputs.empty() || options_.sql_n <= 0) {
    return ErrorResponse(Status::Unimplemented(
        "this server has no SQL input relations configured"));
  }
  if (request.k <= 0) {
    return ErrorResponse(Status::InvalidArgument("k must be positive"));
  }
  auto formula = ParseFormula(request.query_text);
  if (!formula.ok()) return ErrorResponse(formula.status());

  sql::SqlSystem system;
  system.executor().set_exec_context(ctx);
  auto list =
      system.Evaluate(**formula, options_.sql_inputs, options_.sql_n);
  if (!list.ok()) return ErrorResponse(list.status());

  QueryResponse response;
  const int64_t k = std::min(request.k, options_.max_hits);
  for (const RankedSegment& seg : TopKSegments(*list, k)) {
    response.hits.push_back(
        WireHit{0, seg.id, seg.sim.actual, seg.sim.max});
  }
  response.videos_evaluated = 1;
  return response;
}

Retriever* QueryServer::RetrieverFor(bool use_cache, bool serial) {
  const int index = (use_cache ? 2 : 0) + (serial ? 1 : 0);
  MutexLock lock(&retrievers_mu_);
  if (retrievers_[index] == nullptr) {
    QueryOptions opts = options_.query_options;
    opts.cache_mode = use_cache ? CacheMode::kReadWrite : CacheMode::kOff;
    if (serial) opts.parallelism = 1;
    retrievers_[index] = std::make_unique<Retriever>(store_, opts);
  }
  return retrievers_[index].get();
}

void QueryServer::WriteResponseBestEffort(const Socket& socket,
                                          const QueryResponse& response) {
  auto framed =
      FrameMessage(EncodeResponse(response), options_.max_frame_bytes);
  if (!framed.ok()) return;  // Cannot happen for hit-less responses.
  WriteFull(socket, framed->data(), framed->size(),
            DeadlineAfterMs(options_.write_timeout_ms))
      .IgnoreError();  // Best effort: the peer may already be gone.
}

Status QueryServer::Shutdown() {
  if (!started_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("QueryServer::Shutdown before Start");
  }
  // One drain at a time: a second caller (e.g. the destructor after an
  // explicit Shutdown) parks here and finds running_ already false.
  MutexLock shutdown_lock(&shutdown_mu_);
  if (!running_.load(std::memory_order_acquire)) return Status::OK();
  stopping_.store(true, std::memory_order_release);

  // Unblock the accept loop promptly (it also exits on its next tick).
  listener_.ShutdownBoth();

  // Phase 1 — stop accepting: wait for the accept loop to exit so no new
  // session can be admitted while we drain, then close the listener (safe
  // now: no other thread touches it).
  {
    MutexLock lock(&mu_);
    while (!accept_loop_done_) {
      drained_cv_.WaitFor(mu_, std::chrono::milliseconds(50));
    }
  }
  listener_.Close();

  // Phase 2 — natural drain: in-flight sessions get drain_deadline_ms to
  // finish on their own.
  const auto drain_deadline = DeadlineAfterMs(options_.drain_deadline_ms);
  {
    MutexLock lock(&mu_);
    while (in_flight_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < drain_deadline) {
      drained_cv_.WaitFor(mu_, std::chrono::milliseconds(10));
    }
  }

  // Phase 3 — cancel the stragglers: cooperative context cancellation for
  // sessions mid-evaluation, socket shutdown for sessions parked in
  // transport I/O. Sessions dequeued after this point answer "draining".
  drain_cancelled_.store(true, std::memory_order_release);
  {
    MutexLock lock(&mu_);
    for (auto& [id, session] : live_) {
      if (session.ctx != nullptr) session.ctx->Cancel();
      if (session.socket != nullptr) session.socket->ShutdownBoth();
    }
  }

  // Phase 4 — bounded wait for the cancelled sessions, then join.
  const auto cancel_deadline = DeadlineAfterMs(kCancelledDrainSlackMs);
  {
    MutexLock lock(&mu_);
    while (in_flight_.load(std::memory_order_acquire) > 0 &&
           std::chrono::steady_clock::now() < cancel_deadline) {
      drained_cv_.WaitFor(mu_, std::chrono::milliseconds(10));
    }
  }
  const int64_t leaked = in_flight_.load(std::memory_order_acquire);
  if (leaked > 0) {
    // Do NOT destroy the pool with live sessions on it (their joins would
    // block forever); report the bug instead.
    return Status::Internal(
        StrCat("drain leaked ", leaked, " session(s) past the deadline"));
  }

  pool_.reset();  // Drains the (now empty) queue and joins every worker.
  running_.store(false, std::memory_order_release);
  return Status::OK();
}

}  // namespace htl::net
