#ifndef HTL_NET_FRAME_H_
#define HTL_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/protocol.h"
#include "util/result.h"
#include "util/status.h"

namespace htl::net {

/// Wire framing: every message is `magic(4) length(4) body(length)` with
/// fixed-width little-endian integers. The magic byte sequence rejects
/// accidental cross-protocol traffic before any length is trusted; the
/// length is validated against the reader's max-frame cap *before* any
/// allocation, so an adversarial length prefix cannot balloon memory.
inline constexpr uint32_t kFrameMagic = 0x51'4C'54'48;  // "HTLQ" little-endian.
inline constexpr uint32_t kFrameHeaderBytes = 8;

/// Default cap on one frame body. Requests are tiny (query text); responses
/// carry at most k hits plus a profile text. Anything larger is hostile.
inline constexpr uint32_t kDefaultMaxFrameBytes = 1 << 20;

/// Append-only little-endian byte writer for frame bodies.
class ByteWriter {
 public:
  void U8(uint8_t v);
  void U32(uint32_t v);
  void I32(int32_t v);
  void I64(int64_t v);
  void F64(double v);
  /// U32 length prefix + raw bytes.
  void Str(std::string_view s);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked little-endian reader over a frame body. Every accessor
/// fails cleanly (false) on underflow instead of reading past the buffer —
/// the property the hostile-input suite hammers on.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool U8(uint8_t* out);
  bool U32(uint32_t* out);
  bool I32(int32_t* out);
  bool I64(int64_t* out);
  bool F64(double* out);
  /// Length-prefixed string; the prefix is validated against the remaining
  /// bytes before anything is copied.
  bool Str(std::string* out);

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  bool Raw(void* out, size_t n);

  std::string_view data_;
  size_t pos_ = 0;
};

/// Request body <-> bytes. Encode never fails; Decode returns
/// InvalidArgument/ParseError on anything malformed (wrong version, unknown
/// kind, truncation, trailing garbage) and never crashes or over-reads.
std::string EncodeRequest(const QueryRequest& request);
Result<QueryRequest> DecodeRequest(std::string_view body);

/// Response body <-> bytes, same contract.
std::string EncodeResponse(const QueryResponse& response);
Result<QueryResponse> DecodeResponse(std::string_view body);

/// Admin exchange bodies <-> bytes, same contract (and the same frame
/// header), spoken on the admin listener only. The decoders survive the
/// hostile-input suite like the query codecs: truncation, bad version,
/// unknown verbs/statuses, and trailing bytes all fail cleanly.
std::string EncodeAdminRequest(const AdminRequest& request);
Result<AdminRequest> DecodeAdminRequest(std::string_view body);
std::string EncodeAdminResponse(const AdminResponse& response);
Result<AdminResponse> DecodeAdminResponse(std::string_view body);

/// Frames `body` with the magic/length header. Fails InvalidArgument when
/// the body exceeds `max_frame_bytes` (callers surface this before writing
/// anything, so oversized responses never produce torn frames).
Result<std::string> FrameMessage(std::string_view body, uint32_t max_frame_bytes);

/// Validates a frame header (magic + length), returning the body length.
/// InvalidArgument on bad magic; ResourceExhausted when the length exceeds
/// `max_frame_bytes` — the slow-loris / memory-bomb rejection path.
Result<uint32_t> CheckFrameHeader(const uint8_t header[kFrameHeaderBytes],
                                  uint32_t max_frame_bytes);

}  // namespace htl::net

#endif  // HTL_NET_FRAME_H_
