#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "util/string_util.h"

namespace htl::net {

namespace {

Status ErrnoStatus(const char* what, int err) {
  return Status::Internal(StrCat(what, " failed: ", std::strerror(err)));
}

/// Remaining budget in whole milliseconds for poll(2); 0 once expired.
int PollTimeoutMs(SocketDeadline deadline) {
  const auto now = std::chrono::steady_clock::now();
  if (deadline <= now) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
          .count();
  // poll takes an int; clamp huge deadlines to ~24 days per tick.
  return static_cast<int>(std::min<int64_t>(ms + 1, 2'000'000'000 / 1000));
}

/// Waits for `events` on `fd` until the deadline. OK when ready;
/// DeadlineExceeded on expiry; Internal on poll failure. POLLERR/POLLHUP
/// count as ready — the following recv/send surfaces the real error.
Status WaitReady(int fd, short events, SocketDeadline deadline) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout = PollTimeoutMs(deadline);
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      if (std::chrono::steady_clock::now() >= deadline) {
        return Status::DeadlineExceeded("socket operation timed out");
      }
      continue;  // Clamped tick; keep waiting.
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("poll", errno);
  }
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return ErrnoStatus("fcntl(F_GETFL)", errno);
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(F_SETFL)", errno);
  }
  return Status::OK();
}

}  // namespace

SocketDeadline DeadlineAfterMs(int64_t timeout_ms) {
  const auto now = std::chrono::steady_clock::now();
  if (timeout_ms <= 0) return now;
  return now + std::chrono::milliseconds(timeout_ms);
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> ListenOnLoopback(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  Socket sock(fd);

  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0) {
    return ErrnoStatus("setsockopt(SO_REUSEADDR)", errno);
  }

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(fd, backlog) < 0) return ErrnoStatus("listen", errno);
  HTL_RETURN_IF_ERROR(SetNonBlocking(fd));
  return sock;
}

Result<uint16_t> LocalPort(const Socket& listener) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> Accept(const Socket& listener, SocketDeadline deadline) {
  for (;;) {
    HTL_RETURN_IF_ERROR(WaitReady(listener.fd(), POLLIN, deadline));
    const int fd =
        ::accept4(listener.fd(), nullptr, nullptr, SOCK_CLOEXEC);
    if (fd >= 0) {
      Socket conn(fd);
      // Request/response frames are small and latency-bound; never Nagle.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return conn;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
        errno == ECONNABORTED) {
      continue;  // Raced another accept or the peer gave up; wait again.
    }
    if (errno == EBADF || errno == EINVAL) {
      return Status::Unavailable("listener shut down");
    }
    return ErrnoStatus("accept", errno);
  }
}

Result<Socket> Connect(const std::string& host, uint16_t port,
                       SocketDeadline deadline) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument(
        StrCat("host must be an IPv4 literal, got '", host, "'"));
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  Socket sock(fd);
  HTL_RETURN_IF_ERROR(SetNonBlocking(fd));

  if (::connect(fd, reinterpret_cast<const struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      if (errno == ECONNREFUSED || errno == ENETUNREACH) {
        return Status::Unavailable(
            StrCat("connect to ", host, ":", port, ": ",
                   std::strerror(errno)));
      }
      return ErrnoStatus("connect", errno);
    }
    Status ready = WaitReady(fd, POLLOUT, deadline);
    if (ready.IsDeadlineExceeded()) {
      return Status::DeadlineExceeded(
          StrCat("connect to ", host, ":", port, " timed out"));
    }
    HTL_RETURN_IF_ERROR(ready);
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) {
      return Status::Unavailable(
          StrCat("connect to ", host, ":", port, ": ", std::strerror(err)));
    }
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status ReadFull(const Socket& socket, void* buf, size_t n,
                SocketDeadline deadline, size_t* bytes_read) {
  size_t done = 0;
  if (bytes_read != nullptr) *bytes_read = 0;
  while (done < n) {
    HTL_RETURN_IF_ERROR(WaitReady(socket.fd(), POLLIN, deadline));
    const ssize_t rc = ::recv(socket.fd(), static_cast<char*>(buf) + done,
                              n - done, 0);
    if (rc > 0) {
      done += static_cast<size_t>(rc);
      if (bytes_read != nullptr) *bytes_read = done;
      continue;
    }
    if (rc == 0) {
      return Status::Unavailable(
          done == 0 ? "connection closed by peer"
                    : StrCat("connection closed mid-message after ", done,
                             " of ", n, " bytes"));
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET || errno == EPIPE) {
      return Status::Unavailable(StrCat("recv: ", std::strerror(errno)));
    }
    return ErrnoStatus("recv", errno);
  }
  return Status::OK();
}

Status WriteFull(const Socket& socket, const void* buf, size_t n,
                 SocketDeadline deadline) {
  size_t done = 0;
  while (done < n) {
    HTL_RETURN_IF_ERROR(WaitReady(socket.fd(), POLLOUT, deadline));
    const ssize_t rc =
        ::send(socket.fd(), static_cast<const char*>(buf) + done, n - done,
               MSG_NOSIGNAL);
    if (rc >= 0) {
      done += static_cast<size_t>(rc);
      continue;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (errno == ECONNRESET || errno == EPIPE) {
      return Status::Unavailable(StrCat("send: ", std::strerror(errno)));
    }
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

void DrainPending(const Socket& socket, size_t max) {
  char sink[512];
  size_t drained = 0;
  while (drained < max) {
    const size_t want = std::min(sizeof(sink), max - drained);
    const ssize_t rc = ::recv(socket.fd(), sink, want, MSG_DONTWAIT);
    if (rc <= 0) return;
    drained += static_cast<size_t>(rc);
  }
}

}  // namespace htl::net
