#ifndef HTL_NET_SOCKET_H_
#define HTL_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace htl::net {

/// Steady-clock deadline shared by all socket operations: every blocking
/// call takes an absolute deadline and returns Status::DeadlineExceeded
/// instead of hanging — the transport-level half of the slow-loris defence
/// (the frame layer's size cap is the other half).
using SocketDeadline = std::chrono::steady_clock::time_point;

/// A deadline `timeout_ms` from now (<= 0 is already expired).
SocketDeadline DeadlineAfterMs(int64_t timeout_ms);

/// Move-only RAII wrapper over one file descriptor. This header and
/// socket.cc are the only files allowed to touch socket syscalls
/// (tools/lint.py `no-raw-socket`): every error becomes a Status here, no
/// signal ever escapes (writes use MSG_NOSIGNAL), and every blocking
/// primitive is deadline-bounded.
///
/// Error vocabulary:
///   DeadlineExceeded  the per-call deadline expired mid-operation;
///   Unavailable       peer closed / reset / refused — transient from the
///                     client's point of view (retryable with backoff);
///   InvalidArgument   caller misuse (e.g. writing on an invalid socket);
///   Internal          unexpected syscall failure (carries errno text).
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor (idempotent).
  void Close();

  /// Shuts down both directions without closing the descriptor — wakes any
  /// thread blocked in ReadFull/WriteFull on this socket (the drain path
  /// uses this to unstick sessions parked on slow clients). Safe to call
  /// from another thread while the owner is blocked in poll.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Listening socket on 127.0.0.1:`port` (0 picks an ephemeral port) with
/// SO_REUSEADDR and the given accept backlog.
Result<Socket> ListenOnLoopback(uint16_t port, int backlog);

/// The port a listening socket is bound to (resolves port 0).
Result<uint16_t> LocalPort(const Socket& listener);

/// Accepts one connection, waiting until `deadline`. DeadlineExceeded when
/// nothing arrived (the accept loop's poll tick); Unavailable when the
/// listener was shut down under the caller.
Result<Socket> Accept(const Socket& listener, SocketDeadline deadline);

/// Connects to `host`:`port` within the deadline. Unavailable on refusal /
/// unreachable (retryable), DeadlineExceeded on timeout.
Result<Socket> Connect(const std::string& host, uint16_t port,
                       SocketDeadline deadline);

/// Reads exactly `n` bytes. Unavailable when the peer closes mid-read (a
/// torn frame) or before the first byte (clean EOF — callers that care
/// distinguish by `short_read` below having seen 0 bytes).
Status ReadFull(const Socket& socket, void* buf, size_t n,
                SocketDeadline deadline, size_t* bytes_read = nullptr);

/// Writes exactly `n` bytes. Unavailable on EPIPE/ECONNRESET (peer went
/// away mid-response), DeadlineExceeded when the peer stops draining.
Status WriteFull(const Socket& socket, const void* buf, size_t n,
                 SocketDeadline deadline);

/// Best-effort drain of already-arrived bytes (up to `max`, never blocks).
/// The reject path uses this so closing with unread data does not RST the
/// response out of the client's receive buffer. Errors are ignored.
void DrainPending(const Socket& socket, size_t max);

}  // namespace htl::net

#endif  // HTL_NET_SOCKET_H_
