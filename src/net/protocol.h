#ifndef HTL_NET_PROTOCOL_H_
#define HTL_NET_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace htl::net {

/// Protocol version spoken by this tree. A server answers a request whose
/// version it does not speak with kWireInvalidArgument (never by guessing).
inline constexpr uint8_t kProtocolVersion = 1;

/// Which evaluation backend a request runs on — the paper's two systems
/// plus whole-video browsing:
enum class QueryKind : uint8_t {
  /// HTL text -> Retriever::TopSegments* (direct/reference engines) at
  /// `level`, top-k segments over the whole store.
  kHtlSegments = 0,
  /// HTL text -> Retriever::TopVideos* (query asserted at the root).
  kHtlVideos = 1,
  /// HTL text -> the SQL-based second system (section 4): translated to SQL
  /// and executed on the relational engine over the server's configured
  /// named input lists. Top-k entries of the resulting similarity list.
  kSql = 2,
};

/// True for byte values that decode to a QueryKind.
bool IsValidQueryKind(uint8_t kind);

/// Wire status codes. A strict subset of StatusCode plus kWireOverloaded:
/// the explicit load-shedding refusal, kept distinct so clients can
/// back off on it without parsing messages.
enum class WireStatus : uint8_t {
  kWireOk = 0,
  kWireInvalidArgument = 1,
  kWireParseError = 2,
  kWireDeadlineExceeded = 3,
  kWireCancelled = 4,
  kWireResourceExhausted = 5,
  kWireOverloaded = 6,
  kWireUnimplemented = 7,
  kWireInternal = 8,
};

/// StatusCode -> wire code (unknown codes collapse to kWireInternal;
/// kUnavailable maps to kWireOverloaded).
WireStatus WireStatusFromCode(StatusCode code);

/// Wire code -> Status with `message` (kWireOk ignores the message).
Status StatusFromWire(WireStatus wire, std::string message);

/// Request flag bits.
inline constexpr uint8_t kFlagWantProfile = 0x1;  // EXPLAIN text in response.

/// One similarity query. `query_text` is HTL concrete syntax for every
/// kind; `level` applies to kHtlSegments only.
struct QueryRequest {
  QueryKind kind = QueryKind::kHtlSegments;
  int32_t level = 1;
  int64_t k = 10;

  /// Client budget in milliseconds, mapped onto the server-side ExecContext
  /// deadline (ExecContext::SetTimeoutMs clamping applies); <= 0 means the
  /// server default. The server cancels its own work when this expires.
  int64_t deadline_ms = 0;

  /// Serve from / fill the server's result+list caches (the server keeps a
  /// cached and an uncached Retriever; both are bit-identical per epoch).
  bool use_cache = false;

  /// Worker count for per-video parallel evaluation: 0 = server default,
  /// 1 = serial. Other values clamp to those two classes server-side.
  int32_t parallelism = 0;

  /// kFlagWantProfile: attach the EXPLAIN profile text to the response.
  uint8_t flags = 0;

  std::string query_text;
};

/// Response flag bits.
inline constexpr uint8_t kFlagDegraded = 0x1;  // Soft-watermark shed mode.
inline constexpr uint8_t kFlagPartial = 0x2;   // Some videos were skipped.

/// One ranked hit. For kHtlVideos, `segment` is the root segment id of the
/// video; for kSql, `video` is 0 (the configured input relation set).
struct WireHit {
  int64_t video = 0;
  int64_t segment = 0;
  double actual = 0.0;
  double max = 0.0;
};

/// The server's answer. `status` kWireOk covers complete *and* partial
/// results — kFlagPartial plus videos_failed says what is missing
/// (RetrievalReport semantics over the wire); every non-OK status carries a
/// human-readable message.
struct QueryResponse {
  WireStatus status = WireStatus::kWireOk;
  uint8_t flags = 0;
  int64_t videos_evaluated = 0;
  int64_t videos_failed = 0;
  std::vector<WireHit> hits;
  /// Error message, degraded-report summary, or (want_profile) the EXPLAIN
  /// profile text.
  std::string message;

  bool ok() const { return status == WireStatus::kWireOk; }
  bool degraded() const { return (flags & kFlagDegraded) != 0; }
  bool partial() const { return (flags & kFlagPartial) != 0; }
};

/// Verbs served by the QueryServer's admin listener — a second, lightweight
/// port that is exempt from admission control (shedding runs at accept time
/// on the query port), so the telemetry plane answers even at 10x overload.
enum class AdminVerb : uint8_t {
  kMetricsText = 0,  // Human-readable metrics listing (MetricsSnapshot).
  kMetricsJson = 1,  // MetricsSnapshot::ToJson().
  kHealthz = 2,      // JSON health document (state, in-flight, stalls).
  kSlowlog = 3,      // Wide-event query log tail as JSON (arg = max records).
  kTrace = 4,        // Chrome trace JSON for one record (arg = id, 0 = latest).
};

/// True for byte values that decode to an AdminVerb.
bool IsValidAdminVerb(uint8_t verb);

/// One admin exchange request. `arg` is the verb's argument: kSlowlog takes
/// the maximum record count (<= 0 means the server default), kTrace the
/// wide-event record id whose retained profile to export (0 = the newest
/// record with a retained profile). Other verbs ignore it.
struct AdminRequest {
  AdminVerb verb = AdminVerb::kMetricsText;
  int64_t arg = 0;
};

/// The admin listener's answer: a status plus an opaque UTF-8 body (text or
/// JSON per the verb; the error message on non-OK statuses).
struct AdminResponse {
  WireStatus status = WireStatus::kWireOk;
  std::string body;

  bool ok() const { return status == WireStatus::kWireOk; }
};

}  // namespace htl::net

#endif  // HTL_NET_PROTOCOL_H_
