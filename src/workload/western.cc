#include "workload/western.h"

#include "htl/parser.h"
#include "model/video_builder.h"
#include "util/logging.h"

namespace htl {
namespace western {

namespace {

FormulaPtr MustParse(const char* text) {
  Result<FormulaPtr> r = ParseFormula(text);
  HTL_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void AddPlane(SegmentMeta& meta, ObjectId id, const char* state_fact) {
  ObjectAppearance plane;
  plane.id = id;
  plane.attributes["type"] = AttrValue("airplane");
  meta.AddObject(std::move(plane));
  meta.AddFact({state_fact, {id}});
}

void AddPerson(SegmentMeta& meta, ObjectId id, const char* type, const char* name) {
  ObjectAppearance person;
  person.id = id;
  person.attributes["type"] = AttrValue(type);
  person.attributes["name"] = AttrValue(name);
  meta.AddObject(std::move(person));
}

}  // namespace

VideoTree MakeVideo() {
  VideoBuilder b;
  b.Meta(b.root()).SetAttribute("title", AttrValue("Rio Lobo"));
  b.Meta(b.root()).SetAttribute("type", AttrValue("western"));
  b.Meta(b.root()).SetAttribute("star", AttrValue("JohnWayne"));

  VideoBuilder::Handle scenes[4];
  VideoBuilder::Handle frames[12];
  for (int s = 0; s < 4; ++s) {
    scenes[s] = b.AddChild(b.root());
    for (int f = 0; f < 3; ++f) frames[s * 3 + f] = b.AddChild(scenes[s]);
  }
  b.Meta(scenes[0]).SetAttribute("topic", AttrValue("airfield"));
  b.Meta(scenes[1]).SetAttribute("topic", AttrValue("shootout"));
  b.Meta(scenes[2]).SetAttribute("topic", AttrValue("sunset"));
  b.Meta(scenes[3]).SetAttribute("topic", AttrValue("landscape"));

  // Scene 1 (frames 1-3): the airplane pattern of formula (A).
  AddPlane(b.Meta(frames[0]), kPlaneA, "on_ground");
  AddPlane(b.Meta(frames[0]), kPlaneB, "on_ground");
  AddPlane(b.Meta(frames[1]), kPlaneA, "in_air");
  AddPlane(b.Meta(frames[1]), kPlaneB, "in_air");
  AddPlane(b.Meta(frames[2]), kPlaneA, "shot_down");
  AddPlane(b.Meta(frames[2]), kPlaneB, "in_air");

  // Scene 2 (frames 4-6): John Wayne shoots the bandit — formula (B).
  {
    SegmentMeta& f4 = b.Meta(frames[3]);
    AddPerson(f4, kJohnWayne, "person", "JohnWayne");
    AddPerson(f4, kBandit, "bandit", "Frank");
    f4.AddFact({"holds_gun", {kJohnWayne}});
    f4.AddFact({"holds_gun", {kBandit}});
    SegmentMeta& f5 = b.Meta(frames[4]);
    AddPerson(f5, kJohnWayne, "person", "JohnWayne");
    AddPerson(f5, kBandit, "bandit", "Frank");
    f5.AddFact({"fires_at", {kJohnWayne, kBandit}});
    SegmentMeta& f6 = b.Meta(frames[5]);
    AddPerson(f6, kBandit, "bandit", "Frank");
    f6.AddFact({"on_floor", {kBandit}});
  }

  // Scene 3 (frames 7-9): John Wayne rides into the sunset.
  for (int f = 6; f < 9; ++f) {
    AddPerson(b.Meta(frames[f]), kJohnWayne, "person", "JohnWayne");
  }
  // Scene 4 (frames 10-12): empty landscape.

  b.NameLevel("scene", 2);
  b.NameLevel("frame", 3);
  Result<VideoTree> built = std::move(b).Build();
  HTL_CHECK(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

FormulaPtr FormulaB() {
  return MustParse(
      "exists x, y (present(x) and present(y) and name(x) = 'JohnWayne' and "
      "type(y) = 'bandit' and holds_gun(x) and holds_gun(y) and "
      "eventually (present(x) and present(y) and fires_at(x, y) and "
      "eventually (present(y) and on_floor(y))))");
}

FormulaPtr FormulaA() {
  return MustParse(
      "exists p (type(p) = 'airplane' and on_ground(p)) and next "
      "(exists p (type(p) = 'airplane' and in_air(p)) until "
      "exists p (type(p) = 'airplane' and shot_down(p)))");
}

FormulaPtr BrowsingQuery() {
  return MustParse(
      "type = 'western' and at-frame-level("
      "exists x, y (present(x) and present(y) and name(x) = 'JohnWayne' and "
      "type(y) = 'bandit' and holds_gun(x) and holds_gun(y) and "
      "eventually (present(x) and present(y) and fires_at(x, y) and "
      "eventually (present(y) and on_floor(y)))))");
}

}  // namespace western
}  // namespace htl
