#ifndef HTL_WORKLOAD_FOOTAGE_GEN_H_
#define HTL_WORKLOAD_FOOTAGE_GEN_H_

#include <vector>

#include "analyzer/pipeline.h"
#include "util/rng.h"

namespace htl {

/// Synthetic "raw footage" for the analyzer pipeline: a sequence of frames
/// whose feature histograms change sharply at scene changes (so the cut
/// detector has ground truth to find) and whose detections are moving
/// boxes with smooth trajectories within a scene (so the tracker can
/// follow them). The stand-in for real decoded video, which the paper's
/// testbed had and this reproduction does not.
struct FootageOptions {
  int64_t num_scenes = 5;
  int64_t min_scene_frames = 4;
  int64_t max_scene_frames = 12;
  int histogram_bins = 8;
  /// Objects per scene, each a random type from this palette.
  int min_objects = 1;
  int max_objects = 3;
  std::vector<std::string> labels = {"person", "train", "airplane"};
  /// Image dimensions the boxes live in.
  double width = 320;
  double height = 240;
  /// Per-frame drift of a box center (uniform in [-drift, +drift]).
  double drift = 6.0;
};

struct Footage {
  std::vector<RawFrame> frames;
  /// Ground-truth first frame (0-based) of every scene.
  std::vector<int64_t> scene_starts;
};

/// Deterministic given the Rng state.
Footage GenerateFootage(Rng& rng, const FootageOptions& options);

}  // namespace htl

#endif  // HTL_WORKLOAD_FOOTAGE_GEN_H_
