#ifndef HTL_WORKLOAD_WESTERN_H_
#define HTL_WORKLOAD_WESTERN_H_

#include "htl/ast.h"
#include "model/video.h"

namespace htl {

/// The running example of the paper's sections 2.1-2.4: a western movie
/// starring John Wayne, annotated so that the example formulas (A) and (B)
/// evaluate to known values.
///
/// The video has three levels: root (the movie), 4 scenes, and 12 frames.
/// Scene 2 contains the shooting: John Wayne and a bandit both holding
/// guns, then John Wayne firing at the bandit, then the bandit on the
/// floor — exactly formula (B)'s pattern. The frame level also carries a
/// plane sequence for formula (A)'s shot pattern (planes on the ground,
/// planes in the air, a plane shot down).
namespace western {

inline constexpr ObjectId kJohnWayne = 1;
inline constexpr ObjectId kBandit = 2;
inline constexpr ObjectId kPlaneA = 3;
inline constexpr ObjectId kPlaneB = 4;

/// Builds the annotated movie. Levels: 1 root, 2 "scene" (4), 3 "frame"
/// (12, 3 per scene).
VideoTree MakeVideo();

/// Formula (B): John Wayne shoots a bandit —
///   exists x, y (present(x) and present(y) and name(x)='JohnWayne' and
///     type(y)='bandit' and holds_gun(x) and holds_gun(y) and
///     eventually (fires_at(x, y) and eventually on_floor(y)))
/// Asserted at the frame level it peaks (exact match, 8/8) at the first
/// frame of the shooting scene (global frame 4).
FormulaPtr FormulaB();

/// Formula (A)'s shape over the frame level:
///   planes_on_ground and next (planes_in_air until plane_down)
/// with the three non-temporal parts expressed as atomic formulas:
///   M1 = exists p (type(p)='airplane' and on_ground(p))
///   M2 = exists p (type(p)='airplane' and in_air(p))
///   M3 = exists p (type(p)='airplane' and shot_down(p))
FormulaPtr FormulaA();

/// The browsing query of section 2.3: a western starring John Wayne, with
/// the shooting pattern somewhere at the frame level —
///   type = 'western' and at-frame-level(FormulaB body).
FormulaPtr BrowsingQuery();

}  // namespace western
}  // namespace htl

#endif  // HTL_WORKLOAD_WESTERN_H_
