#include "workload/video_gen.h"

#include "model/video_builder.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

VideoTree GenerateVideo(Rng& rng, const VideoGenOptions& options) {
  HTL_CHECK_GE(options.levels, 1);
  HTL_CHECK_GE(options.min_branching, 1);
  HTL_CHECK_GE(options.max_branching, options.min_branching);

  VideoBuilder builder;
  builder.Meta(builder.root()).SetAttribute("title", "synthetic");
  builder.Meta(builder.root()).SetAttribute("type", "synthetic");

  // Grow the tree level by level.
  std::vector<VideoBuilder::Handle> frontier = {builder.root()};
  for (int depth = 1; depth < options.levels; ++depth) {
    std::vector<VideoBuilder::Handle> next;
    for (VideoBuilder::Handle h : frontier) {
      const int64_t kids = rng.UniformInt(options.min_branching, options.max_branching);
      for (int64_t i = 0; i < kids; ++i) next.push_back(builder.AddChild(h));
    }
    frontier = std::move(next);
  }

  // Annotate every node (most queries target the leaf level, but level
  // operators read intermediate meta-data too). Re-walk by building: we
  // annotate the frontier (leaves) densely and all nodes sparsely via the
  // builder handles we kept; simpler: annotate leaves densely here.
  auto annotate = [&](SegmentMeta& meta, SegmentId salt) {
    meta.SetAttribute("duration", rng.UniformInt(1, 100));
    for (int o = 1; o <= options.num_objects; ++o) {
      if (!rng.Bernoulli(options.object_density)) continue;
      ObjectAppearance obj;
      obj.id = o;
      obj.attributes["type"] =
          AttrValue(options.types[static_cast<size_t>(o) % options.types.size()]);
      if (!options.int_attr.empty()) {
        obj.attributes[options.int_attr] = AttrValue(rng.UniformInt(1, options.attr_range));
      }
      meta.AddObject(std::move(obj));
    }
    std::vector<ObjectId> present;
    for (const ObjectAppearance& o : meta.objects()) present.push_back(o.id);
    if (!present.empty()) {
      for (const std::string& fact : options.unary_facts) {
        if (rng.Bernoulli(options.fact_density)) {
          meta.AddFact({fact,
                        {present[static_cast<size_t>(rng.UniformInt(
                            0, static_cast<int64_t>(present.size()) - 1))]}});
        }
      }
      if (present.size() >= 2) {
        for (const std::string& fact : options.binary_facts) {
          if (rng.Bernoulli(options.fact_density)) {
            const int64_t a =
                rng.UniformInt(0, static_cast<int64_t>(present.size()) - 1);
            int64_t b = rng.UniformInt(0, static_cast<int64_t>(present.size()) - 1);
            meta.AddFact({fact,
                          {present[static_cast<size_t>(a)],
                           present[static_cast<size_t>(b)]}});
          }
        }
      }
    }
    (void)salt;
  };
  // Annotate every node of the builder (handles are dense 0..N-1 with 0 the
  // root; we annotate all of them).
  for (VideoBuilder::Handle h : frontier) annotate(builder.Meta(h), static_cast<SegmentId>(h));

  Result<VideoTree> built = std::move(builder).Build();
  HTL_CHECK(built.ok()) << built.status().ToString();
  VideoTree video = std::move(built).value();
  if (options.levels >= 2 && video.num_levels() >= 2) {
    HTL_CHECK(video.NameLevel("frame", video.num_levels()).ok());
  }
  if (video.num_levels() >= 3) {
    HTL_CHECK(video.NameLevel("shot", video.num_levels() - 1).ok());
  }
  if (video.num_levels() >= 4) {
    HTL_CHECK(video.NameLevel("scene", video.num_levels() - 2).ok());
  }
  return video;
}

std::vector<MetadataStore::VideoId> GenerateCorpus(const CorpusGenOptions& options,
                                                   MetadataStore* store) {
  HTL_CHECK(store != nullptr);
  HTL_CHECK_GE(options.num_videos, 0);
  Rng rng(options.seed);
  std::vector<MetadataStore::VideoId> selective;
  for (int64_t i = 0; i < options.num_videos; ++i) {
    VideoGenOptions video_options = options.video;
    if (options.size_skew > 0.0 && rng.Bernoulli(options.size_skew)) {
      video_options.min_branching *= 2;
      video_options.max_branching *= 2;
    }
    VideoTree video = GenerateVideo(rng, video_options);
    const bool is_selective = rng.Bernoulli(options.selective_fraction);
    if (is_selective) {
      // Plant the rare markers on the first leaf segment: a fresh object of
      // the rare type plus a unary fact over it.
      const ObjectId rare_id = options.video.num_objects + 1;
      SegmentMeta& meta = video.MutableMeta(video.num_levels(), 1);
      ObjectAppearance rare;
      rare.id = rare_id;
      rare.attributes["type"] = AttrValue(options.rare_type);
      meta.AddObject(std::move(rare));
      meta.AddFact({options.rare_fact, {rare_id}});
    }
    const MetadataStore::VideoId id = store->AddVideo(std::move(video));
    if (is_selective) selective.push_back(id);
  }
  return selective;
}

}  // namespace htl
