#ifndef HTL_WORKLOAD_FORMULA_GEN_H_
#define HTL_WORKLOAD_FORMULA_GEN_H_

#include <string>
#include <vector>

#include "htl/ast.h"
#include "util/rng.h"

namespace htl {

/// Parameters for the random formula generator used by the property tests
/// (direct engine vs reference engine equivalence).
struct FormulaGenOptions {
  /// Maximum operator depth above the atomic leaves.
  int max_depth = 4;

  /// Construct toggles. The defaults cover the extended conjunctive class;
  /// enabling `or` leaves the class the direct engine still supports, and
  /// `not` produces kGeneral formulas only the reference engine evaluates.
  bool allow_exists = true;
  bool allow_freeze = true;
  bool allow_level = false;  // Needs a >2-level video.
  bool allow_or = false;
  bool allow_not = false;
  /// Negation over variable-free subformulas only — the extension the
  /// direct engine supports (list complement); allow_not produces fully
  /// general negation that only the reference engine evaluates.
  bool allow_closed_not = false;

  /// Vocabulary matching VideoGenOptions' defaults.
  std::vector<std::string> types = {"person", "train", "airplane", "horse"};
  std::vector<std::string> unary_facts = {"moving", "armed"};
  std::vector<std::string> binary_facts = {"fires_at", "close_up"};
  std::string int_attr = "height";
  int64_t attr_range = 5;
  int max_levels = 3;  // For at-level-i when allow_level.
};

/// Generates a closed, bindable formula. Deterministic given the Rng state.
FormulaPtr GenerateFormula(Rng& rng, const FormulaGenOptions& options);

}  // namespace htl

#endif  // HTL_WORKLOAD_FORMULA_GEN_H_
