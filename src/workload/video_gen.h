#ifndef HTL_WORKLOAD_VIDEO_GEN_H_
#define HTL_WORKLOAD_VIDEO_GEN_H_

#include <string>
#include <vector>

#include "model/video.h"
#include "util/rng.h"

namespace htl {

/// Parameters for the synthetic hierarchical video generator used by the
/// property tests and the multi-level benchmarks (the paper could not print
/// multi-level meta-data; this generator exercises the same code paths).
struct VideoGenOptions {
  /// Depth of the hierarchy including the root (2 = root + shots).
  int levels = 3;

  /// Children per node, drawn uniformly from [min, max].
  int min_branching = 2;
  int max_branching = 4;

  /// Size of the object-id universe.
  int num_objects = 6;

  /// Probability that a given object appears in a given segment.
  double object_density = 0.4;

  /// Object types assigned round-robin from this palette.
  std::vector<std::string> types = {"person", "train", "airplane", "horse"};

  /// Unary/binary fact names sprinkled over present objects.
  std::vector<std::string> unary_facts = {"moving", "armed"};
  std::vector<std::string> binary_facts = {"fires_at", "close_up"};
  double fact_density = 0.3;

  /// Integer attribute attached to present objects (e.g. height), drawn
  /// uniformly from [1, attr_range].
  std::string int_attr = "height";
  int64_t attr_range = 5;
};

/// Generates a random video tree; all leaves at the same depth, named
/// levels "scene" (2) and "shot" (3) when that deep. Deterministic given
/// the Rng state.
VideoTree GenerateVideo(Rng& rng, const VideoGenOptions& options);

}  // namespace htl

#endif  // HTL_WORKLOAD_VIDEO_GEN_H_
