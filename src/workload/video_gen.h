#ifndef HTL_WORKLOAD_VIDEO_GEN_H_
#define HTL_WORKLOAD_VIDEO_GEN_H_

#include <string>
#include <vector>

#include "model/video.h"
#include "util/rng.h"

namespace htl {

/// Parameters for the synthetic hierarchical video generator used by the
/// property tests and the multi-level benchmarks (the paper could not print
/// multi-level meta-data; this generator exercises the same code paths).
struct VideoGenOptions {
  /// Depth of the hierarchy including the root (2 = root + shots).
  int levels = 3;

  /// Children per node, drawn uniformly from [min, max].
  int min_branching = 2;
  int max_branching = 4;

  /// Size of the object-id universe.
  int num_objects = 6;

  /// Probability that a given object appears in a given segment.
  double object_density = 0.4;

  /// Object types assigned round-robin from this palette.
  std::vector<std::string> types = {"person", "train", "airplane", "horse"};

  /// Unary/binary fact names sprinkled over present objects.
  std::vector<std::string> unary_facts = {"moving", "armed"};
  std::vector<std::string> binary_facts = {"fires_at", "close_up"};
  double fact_density = 0.3;

  /// Integer attribute attached to present objects (e.g. height), drawn
  /// uniformly from [1, attr_range].
  std::string int_attr = "height";
  int64_t attr_range = 5;
};

/// Generates a random video tree; all leaves at the same depth, named
/// levels "scene" (2) and "shot" (3) when that deep. Deterministic given
/// the Rng state.
VideoTree GenerateVideo(Rng& rng, const VideoGenOptions& options);

/// Parameters for a whole synthetic corpus — the 10^5..10^6-video stores the
/// scale benches and the pruning differential battery run against. A
/// controllable fraction of videos is "selective": one leaf segment carries
/// a rare object type plus a rare unary fact over it, so a query targeting
/// either marker matches exactly that fraction of the corpus (the shape that
/// makes bound-based pruning bite — see DESIGN.md "Scale-out retrieval").
struct CorpusGenOptions {
  /// Corpus size (videos are appended to the store, ids ascending).
  int64_t num_videos = 1000;

  /// Per-video shape shared by the whole corpus.
  VideoGenOptions video;

  /// Probability that a video carries the rare markers.
  double selective_fraction = 0.05;

  /// The rare markers: an object of this type, and this unary fact over it,
  /// planted on the selective video's first leaf segment. The object id is
  /// `video.num_objects + 1`, outside the generated universe.
  std::string rare_type = "zeppelin";
  std::string rare_fact = "rare_event";

  /// Probability that a video is generated oversized (branching doubled) —
  /// 0 keeps sizes uniform; > 0 skews the per-video work distribution, the
  /// adversarial case for shard balance.
  double size_skew = 0.0;

  /// Seed for the whole corpus (one Rng stream; fully reproducible).
  uint64_t seed = 1;
};

/// Appends `options.num_videos` synthetic videos to `store` and returns the
/// ids of the selective videos, ascending. Deterministic given the options.
std::vector<MetadataStore::VideoId> GenerateCorpus(const CorpusGenOptions& options,
                                                   MetadataStore* store);

}  // namespace htl

#endif  // HTL_WORKLOAD_VIDEO_GEN_H_
