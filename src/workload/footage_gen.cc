#include "workload/footage_gen.h"

#include <algorithm>

#include "util/logging.h"

namespace htl {

namespace {

// A random normalized histogram concentrated on a few bins — distinct
// scenes get visibly different distributions.
std::vector<double> RandomHistogram(Rng& rng, int bins) {
  std::vector<double> h(static_cast<size_t>(bins), 0.0);
  for (int i = 0; i < bins; ++i) h[static_cast<size_t>(i)] = rng.UniformDouble(0, 0.1);
  // Two dominant bins carry most of the mass.
  h[static_cast<size_t>(rng.UniformInt(0, bins - 1))] += rng.UniformDouble(0.3, 0.6);
  h[static_cast<size_t>(rng.UniformInt(0, bins - 1))] += rng.UniformDouble(0.2, 0.4);
  double sum = 0;
  for (double v : h) sum += v;
  for (double& v : h) v /= sum;
  return h;
}

}  // namespace

Footage GenerateFootage(Rng& rng, const FootageOptions& options) {
  HTL_CHECK_GE(options.num_scenes, 1);
  HTL_CHECK_GE(options.min_scene_frames, 1);
  HTL_CHECK_GE(options.max_scene_frames, options.min_scene_frames);

  Footage out;
  for (int64_t scene = 0; scene < options.num_scenes; ++scene) {
    out.scene_starts.push_back(static_cast<int64_t>(out.frames.size()));
    const int64_t len =
        rng.UniformInt(options.min_scene_frames, options.max_scene_frames);
    const std::vector<double> base = RandomHistogram(rng, options.histogram_bins);

    // Scene cast: boxes with types and starting positions.
    struct Actor {
      std::string label;
      BoundingBox box;
    };
    std::vector<Actor> cast;
    const int64_t actors = rng.UniformInt(options.min_objects, options.max_objects);
    for (int64_t a = 0; a < actors; ++a) {
      Actor actor;
      actor.label = options.labels[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(options.labels.size()) - 1))];
      const double w = rng.UniformDouble(20, 60);
      const double h = rng.UniformDouble(20, 60);
      actor.box = BoundingBox{rng.UniformDouble(0, options.width - w),
                              rng.UniformDouble(0, options.height - h), w, h};
      cast.push_back(std::move(actor));
    }

    for (int64_t f = 0; f < len; ++f) {
      RawFrame frame;
      frame.features.histogram = base;
      // Small within-scene jitter that stays far below the cut threshold.
      for (double& v : frame.features.histogram) {
        v = std::max(0.0, v + rng.UniformDouble(-0.005, 0.005));
      }
      for (Actor& actor : cast) {
        actor.box.x = std::clamp(actor.box.x + rng.UniformDouble(-options.drift,
                                                                 options.drift),
                                 0.0, options.width - actor.box.width);
        actor.box.y = std::clamp(actor.box.y + rng.UniformDouble(-options.drift,
                                                                 options.drift),
                                 0.0, options.height - actor.box.height);
        frame.detections.push_back(Detection{actor.box, actor.label});
      }
      out.frames.push_back(std::move(frame));
    }
  }
  return out;
}

}  // namespace htl
