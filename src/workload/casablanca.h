#ifndef HTL_WORKLOAD_CASABLANCA_H_
#define HTL_WORKLOAD_CASABLANCA_H_

#include <map>
#include <string>

#include "htl/ast.h"
#include "model/video.h"
#include "sim/sim_list.h"

namespace htl {

/// The real-data test case of section 4.1: "The Making of Casablanca",
/// segmented into 50 shots by cut detection; each shot annotated in the
/// picture retrieval system. Tables 1-4 of the paper are reproduced exactly:
/// the input similarity tables (Tables 1-2) are transcribed from the paper,
/// and the meta-data of MakeCasablancaVideo() is annotated so that the
/// picture system re-derives them (constraint weights chosen to match the
/// published similarity values).
namespace casablanca {

inline constexpr int64_t kNumShots = 50;

/// Table 1 — atomic predicate Moving-Train: {[9,9]: 9.787}, max 9.787.
SimilarityList MovingTrainTable();

/// Table 2 — atomic predicate Man-Woman:
/// {[1,4]: 2.595, [6,6]: 1.26, [8,8]: 1.26, [10,44]: 1.26, [47,49]: 6.26},
/// max 6.26. Lower values are shots with two men instead of a man and a
/// woman.
SimilarityList ManWomanTable();

/// Table 3 — intermediate result `eventually Moving-Train`: {[1,9]: 9.787}.
SimilarityList EventuallyMovingTrainTable();

/// Table 4 — final result of Query 1 =
/// `Man-Woman and (eventually Moving-Train)`, eight interval rows with
/// actual values 12.382, 11.047, 11.047, 9.787, 9.787, 9.787, 6.26, 1.26.
SimilarityList Query1ResultTable();

/// Query 1 over named predicates (for EvaluateWithLists and the SQL
/// translator): man_woman and (eventually moving_train).
FormulaPtr Query1Named();

/// The input lists keyed by the predicate names Query1Named() uses.
std::map<std::string, SimilarityList> NamedInputs();

/// The atomic HTL formulas whose picture-system evaluation over
/// MakeCasablancaVideo() reproduces Tables 1 and 2 exactly:
///   moving_train := exists t (type(t)='train' @4.8935 and moving(t) @4.8935)
///   man_woman    := exists x, y (type(x)='person' @0.63 and
///                   type(y)='person' @0.63 and man_woman_pair(x,y) @1.335
///                   and close_up(x,y) @3.665)
FormulaPtr MovingTrainAtomic();
FormulaPtr ManWomanAtomic();

/// Query 1 composed from the atomic formulas (full end-to-end pipeline).
FormulaPtr Query1Full();

/// The 50-shot video (two levels: root + shots) with annotated meta-data.
VideoTree MakeVideo();

}  // namespace casablanca
}  // namespace htl

#endif  // HTL_WORKLOAD_CASABLANCA_H_
