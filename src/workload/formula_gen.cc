#include "workload/formula_gen.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

namespace {

class Generator {
 public:
  Generator(Rng& rng, const FormulaGenOptions& options) : rng_(rng), options_(options) {}

  FormulaPtr Gen(int depth) {
    if (depth <= 0) return Leaf();
    switch (rng_.UniformInt(0, 7)) {
      case 0:
        return MakeAnd(Gen(depth - 1), Gen(depth - 1));
      case 1:
        return MakeUntil(Gen(depth - 1), Gen(depth - 1));
      case 2:
        return MakeEventually(Gen(depth - 1));
      case 3:
        return MakeNext(Gen(depth - 1));
      case 4:
        if (options_.allow_or) return MakeOr(Gen(depth - 1), Gen(depth - 1));
        return MakeAnd(Gen(depth - 1), Gen(depth - 1));
      case 5:
        if (options_.allow_not) return MakeNot(Gen(depth - 1));
        if (options_.allow_closed_not) {
          // Negate a closed (variable-free) temporal subformula.
          return MakeNot(MakeEventually(VarFreeLeaf()));
        }
        return MakeEventually(Gen(depth - 1));
      case 6:
        if (options_.allow_level && options_.max_levels > 2) {
          // Level operators nest from level 1 only in our tests; keep them
          // at the top via GenTop instead. Here fall through to a leaf.
          return Leaf();
        }
        return Leaf();
      default:
        return Leaf();
    }
  }

  /// A top-level formula; may wrap the body in a level operator.
  FormulaPtr GenTop() {
    if (options_.allow_level && options_.max_levels > 2 && rng_.Bernoulli(0.5)) {
      return MakeAtNamedLevel("frame", Gen(options_.max_depth - 1));
    }
    return Gen(options_.max_depth);
  }

 private:
  std::string Fresh(const char* base) { return StrCat(base, ++var_counter_); }

  const std::string& Pick(const std::vector<std::string>& v) {
    return v[static_cast<size_t>(rng_.UniformInt(0, static_cast<int64_t>(v.size()) - 1))];
  }

  CompareOp PickOp() {
    switch (rng_.UniformInt(0, 4)) {
      case 0:
        return CompareOp::kEq;
      case 1:
        return CompareOp::kLt;
      case 2:
        return CompareOp::kLe;
      case 3:
        return CompareOp::kGt;
      default:
        return CompareOp::kGe;
    }
  }

  double Weight() { return static_cast<double>(rng_.UniformInt(1, 8)) / 2.0; }

  FormulaPtr Leaf() {
    switch (rng_.UniformInt(0, options_.allow_freeze ? 4 : 3)) {
      case 0: {
        // Segment attribute comparison (variable-free).
        return MakeCompare(AttrTerm::SegmentAttr("duration"), PickOp(),
                           AttrTerm::Literal(AttrValue(rng_.UniformInt(1, 100))),
                           Weight());
      }
      case 1: {
        // One object variable: type plus optional attribute/fact.
        if (!options_.allow_exists) return VarFreeLeaf();
        std::string x = Fresh("x");
        FormulaPtr body = MakeCompare(AttrTerm::AttrOf("type", x), CompareOp::kEq,
                                      AttrTerm::Literal(AttrValue(Pick(options_.types))),
                                      Weight());
        if (rng_.Bernoulli(0.5)) {
          body = MakeAnd(std::move(body),
                         MakeCompare(AttrTerm::AttrOf(options_.int_attr, x), PickOp(),
                                     AttrTerm::Literal(AttrValue(
                                         rng_.UniformInt(1, options_.attr_range))),
                                     Weight()));
        }
        if (rng_.Bernoulli(0.4)) {
          body = MakeAnd(std::move(body),
                         MakePredicate(Pick(options_.unary_facts), {x}, Weight()));
        }
        return MakeExists({x}, std::move(body));
      }
      case 2: {
        // Two object variables joined by a binary fact.
        if (!options_.allow_exists) return VarFreeLeaf();
        std::string x = Fresh("x");
        std::string y = Fresh("y");
        FormulaPtr body =
            MakeAnd(MakePresent(x, Weight()),
                    MakeAnd(MakePresent(y, Weight()),
                            MakePredicate(Pick(options_.binary_facts), {x, y}, Weight())));
        return MakeExists({x, y}, std::move(body));
      }
      case 3:
        return VarFreeLeaf();
      default: {
        // Freeze template (formula (C) of the paper): capture an attribute
        // now, compare later.
        std::string z = Fresh("z");
        std::string h = Fresh("h");
        FormulaPtr later = MakeAnd(MakePresent(z, Weight()),
                                   MakeCompare(AttrTerm::AttrOf(options_.int_attr, z),
                                               PickOp(), AttrTerm::Variable(h), Weight()));
        FormulaPtr body = MakeAnd(
            MakeCompare(AttrTerm::AttrOf("type", z), CompareOp::kEq,
                        AttrTerm::Literal(AttrValue(Pick(options_.types))), Weight()),
            MakeFreeze(h, AttrTerm::AttrOf(options_.int_attr, z),
                       MakeEventually(std::move(later))));
        return MakeExists({z}, std::move(body));
      }
    }
  }

  FormulaPtr VarFreeLeaf() {
    if (rng_.Bernoulli(0.5)) {
      return MakeCompare(AttrTerm::SegmentAttr("duration"), PickOp(),
                         AttrTerm::Literal(AttrValue(rng_.UniformInt(1, 100))), Weight());
    }
    return MakeTrue();
  }

  Rng& rng_;
  const FormulaGenOptions& options_;
  int var_counter_ = 0;
};

}  // namespace

FormulaPtr GenerateFormula(Rng& rng, const FormulaGenOptions& options) {
  Generator g(rng, options);
  return g.GenTop();
}

}  // namespace htl
