#ifndef HTL_WORKLOAD_RANDOM_LISTS_H_
#define HTL_WORKLOAD_RANDOM_LISTS_H_

#include <cstdint>

#include "sim/sim_list.h"
#include "util/rng.h"

namespace htl {

/// Parameters for the randomly generated similarity lists of section 4.2
/// ("approximately one tenth of these shots satisfy the atomic predicates").
struct RandomListOptions {
  /// Number of shots in the synthetic movie (the paper's "size" column).
  int64_t num_segments = 10'000;

  /// Fraction of segments with non-zero similarity (~0.1 in the paper).
  double coverage = 0.1;

  /// Mean length of a covered run (entries in the generated list represent
  /// runs of consecutive matching shots, as cut-adjacent shots often score
  /// alike).
  double mean_run = 4.0;

  /// Maximum similarity value of the generated atomic predicate. Actual
  /// values are drawn uniformly from (0, max_sim] quantized to 1/16 so that
  /// both evaluation paths produce bit-identical doubles.
  double max_sim = 20.0;
};

/// Draws a random similarity list: alternating geometric gaps and runs with
/// per-run uniform values. Deterministic given the Rng state.
SimilarityList GenerateRandomList(Rng& rng, const RandomListOptions& options);

}  // namespace htl

#endif  // HTL_WORKLOAD_RANDOM_LISTS_H_
