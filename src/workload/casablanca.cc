#include "workload/casablanca.h"

#include "util/logging.h"

namespace htl {
namespace casablanca {

namespace {

// Object ids in the annotation.
constexpr ObjectId kRick = 1;     // The man of the man-woman pair.
constexpr ObjectId kIlsa = 2;     // The woman.
constexpr ObjectId kManA = 3;     // Two men appearing together.
constexpr ObjectId kManB = 4;
constexpr ObjectId kTrain = 5;

// Constraint weights calibrated to the published similarity values:
//   two persons                      -> 0.63 + 0.63            = 1.26
//   + man/woman pair                 -> + 1.335                = 2.595
//   + close-up                       -> + 3.665                = 6.26
//   train + moving                   -> 4.8935 + 4.8935        = 9.787
constexpr double kPersonW = 0.63;
constexpr double kPairW = 1.335;
constexpr double kCloseUpW = 3.665;
constexpr double kTrainW = 4.8935;
constexpr double kMovingW = 4.8935;

void AddPerson(SegmentMeta& meta, ObjectId id) {
  ObjectAppearance obj;
  obj.id = id;
  obj.attributes["type"] = AttrValue("person");
  meta.AddObject(std::move(obj));
}

}  // namespace

SimilarityList MovingTrainTable() {
  return SimilarityList::FromEntriesOrDie({{Interval{9, 9}, kTrainW + kMovingW}},
                                          kTrainW + kMovingW);
}

SimilarityList ManWomanTable() {
  const double two = 2 * kPersonW;
  const double pair = two + kPairW;
  const double close = pair + kCloseUpW;
  return SimilarityList::FromEntriesOrDie(
      {
          {Interval{1, 4}, pair},   // Man and woman together.
          {Interval{6, 6}, two},    // Two men.
          {Interval{8, 8}, two},
          {Interval{10, 44}, two},
          {Interval{47, 49}, close},  // Close-up of the pair.
      },
      close);
}

SimilarityList EventuallyMovingTrainTable() {
  return SimilarityList::FromEntriesOrDie({{Interval{1, 9}, kTrainW + kMovingW}},
                                          kTrainW + kMovingW);
}

SimilarityList Query1ResultTable() {
  const double mt = kTrainW + kMovingW;                     // 9.787
  const double two = 2 * kPersonW;                          // 1.26
  const double pair = two + kPairW;                         // 2.595
  const double close = pair + kCloseUpW;                    // 6.26
  return SimilarityList::FromEntriesOrDie(
      {
          {Interval{1, 4}, pair + mt},   // 12.382
          {Interval{5, 5}, mt},          // 9.787
          {Interval{6, 6}, two + mt},    // 11.047
          {Interval{7, 7}, mt},          // 9.787
          {Interval{8, 8}, two + mt},    // 11.047
          {Interval{9, 9}, mt},          // 9.787
          {Interval{10, 44}, two},       // 1.26
          {Interval{47, 49}, close},     // 6.26
      },
      close + mt);
}

FormulaPtr Query1Named() {
  return MakeAnd(MakePredicate("man_woman", {}),
                 MakeEventually(MakePredicate("moving_train", {})));
}

std::map<std::string, SimilarityList> NamedInputs() {
  return {{"man_woman", ManWomanTable()}, {"moving_train", MovingTrainTable()}};
}

FormulaPtr MovingTrainAtomic() {
  return MakeExists(
      {"t"},
      MakeAnd(MakeCompare(AttrTerm::AttrOf("type", "t"), CompareOp::kEq,
                          AttrTerm::Literal(AttrValue("train")), kTrainW),
              MakePredicate("moving", {"t"}, kMovingW)));
}

FormulaPtr ManWomanAtomic() {
  FormulaPtr body = MakeAnd(
      MakeAnd(MakeCompare(AttrTerm::AttrOf("type", "x"), CompareOp::kEq,
                          AttrTerm::Literal(AttrValue("person")), kPersonW),
              MakeCompare(AttrTerm::AttrOf("type", "y"), CompareOp::kEq,
                          AttrTerm::Literal(AttrValue("person")), kPersonW)),
      MakeAnd(MakePredicate("man_woman_pair", {"x", "y"}, kPairW),
              MakePredicate("close_up", {"x", "y"}, kCloseUpW)));
  return MakeExists({"x", "y"}, std::move(body));
}

FormulaPtr Query1Full() {
  return MakeAnd(ManWomanAtomic(), MakeEventually(MovingTrainAtomic()));
}

VideoTree MakeVideo() {
  VideoTree video = VideoTree::Flat(kNumShots);
  video.MutableMeta(1, 1).SetAttribute("title", "The Making of Casablanca");
  video.MutableMeta(1, 1).SetAttribute("type", "documentary");
  HTL_CHECK(video.NameLevel("shot", 2).ok());

  auto shot = [&](SegmentId s) -> SegmentMeta& { return video.MutableMeta(2, s); };

  // Shots 1-4: the man-woman pair.
  for (SegmentId s = 1; s <= 4; ++s) {
    AddPerson(shot(s), kRick);
    AddPerson(shot(s), kIlsa);
    shot(s).AddFact({"man_woman_pair", {kRick, kIlsa}});
  }
  // Shots 6, 8 and 10-44: two men.
  for (SegmentId s : {SegmentId{6}, SegmentId{8}}) {
    AddPerson(shot(s), kManA);
    AddPerson(shot(s), kManB);
  }
  for (SegmentId s = 10; s <= 44; ++s) {
    AddPerson(shot(s), kManA);
    AddPerson(shot(s), kManB);
  }
  // Shot 9: the moving train.
  {
    ObjectAppearance train;
    train.id = kTrain;
    train.attributes["type"] = AttrValue("train");
    shot(9).AddObject(std::move(train));
    shot(9).AddFact({"moving", {kTrain}});
  }
  // Shots 47-49: close-up of the pair.
  for (SegmentId s = 47; s <= 49; ++s) {
    AddPerson(shot(s), kRick);
    AddPerson(shot(s), kIlsa);
    shot(s).AddFact({"man_woman_pair", {kRick, kIlsa}});
    shot(s).AddFact({"close_up", {kRick, kIlsa}});
  }
  return video;
}

}  // namespace casablanca
}  // namespace htl
