#include "workload/random_lists.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace htl {

namespace {

// Geometric draw with the given mean (>= 1).
int64_t GeometricLength(Rng& rng, double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  // Inverse-CDF sampling; clamp to avoid log(0).
  const double u = std::max(rng.UniformDouble(), 1e-12);
  return 1 + static_cast<int64_t>(std::floor(std::log(u) / std::log(1.0 - p)));
}

}  // namespace

SimilarityList GenerateRandomList(Rng& rng, const RandomListOptions& options) {
  HTL_CHECK_GT(options.num_segments, 0);
  HTL_CHECK_GT(options.coverage, 0.0);
  HTL_CHECK_LT(options.coverage, 1.0);
  // Mean gap that yields the requested coverage given the mean run length:
  // coverage = run / (run + gap).
  const double mean_gap = options.mean_run * (1.0 - options.coverage) / options.coverage;

  std::vector<SimEntry> entries;
  SegmentId pos = 1;
  bool in_gap = true;
  while (pos <= options.num_segments) {
    if (in_gap) {
      pos += GeometricLength(rng, mean_gap);
    } else {
      const int64_t run = GeometricLength(rng, options.mean_run);
      const SegmentId end = std::min<SegmentId>(pos + run - 1, options.num_segments);
      // Quantize to 1/16ths of the unit so values are exact in binary.
      const int64_t ticks = rng.UniformInt(1, static_cast<int64_t>(options.max_sim * 16));
      entries.push_back(SimEntry{Interval{pos, end}, static_cast<double>(ticks) / 16.0});
      pos = end + 2;  // Mandatory 1-segment gap between runs.
    }
    in_gap = !in_gap;
  }
  return SimilarityList::FromEntriesOrDie(std::move(entries), options.max_sim);
}

}  // namespace htl
