#ifndef HTL_SIM_VALUE_TABLE_H_
#define HTL_SIM_VALUE_TABLE_H_

#include <string>
#include <vector>

#include "model/object.h"
#include "model/value.h"
#include "util/interval.h"

namespace htl {

/// A value table (section 3.3): for an attribute function q (e.g.
/// height(x)), each row gives a binding of q's free object variables, one
/// value of q, and the segment-id intervals where q equals that value under
/// the binding. Consumed by the freeze-quantifier join.
class ValueTable {
 public:
  struct Row {
    std::vector<ObjectId> objects;  // Parallel to object_vars().
    AttrValue value;
    std::vector<Interval> where;  // Sorted disjoint id intervals.
  };

  ValueTable() = default;
  explicit ValueTable(std::vector<std::string> object_vars)
      : object_vars_(std::move(object_vars)) {}

  const std::vector<std::string>& object_vars() const { return object_vars_; }
  const std::vector<Row>& rows() const { return rows_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  void AddRow(Row row);

  std::string ToString() const;

 private:
  std::vector<std::string> object_vars_;
  std::vector<Row> rows_;
};

}  // namespace htl

#endif  // HTL_SIM_VALUE_TABLE_H_
