#include "sim/value_table.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

void ValueTable::AddRow(Row row) {
  HTL_CHECK_EQ(row.objects.size(), object_vars_.size());
  HTL_CHECK(IsDisjointSorted(row.where)) << "value-table intervals must be disjoint";
  if (row.where.empty()) return;
  rows_.push_back(std::move(row));
}

std::string ValueTable::ToString() const {
  std::string out = StrCat("values objects=(", StrJoin(object_vars_, ","), ")\n");
  for (const Row& r : rows_) {
    out += StrCat("  (", StrJoin(r.objects, ","), ") = ", r.value.ToString(), " @ ");
    for (const Interval& iv : r.where) out += iv.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace htl
