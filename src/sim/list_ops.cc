#include "sim/list_ops.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/logging.h"

namespace htl {

namespace {

// Forward cursor over a list's entries: value lookups at non-decreasing ids
// in amortized O(1).
class RunCursor {
 public:
  explicit RunCursor(const SimilarityList& list) : entries_(list.entries()) {}

  double ValueAt(SegmentId id) {
    while (i_ < entries_.size() && entries_[i_].range.end < id) ++i_;
    if (i_ < entries_.size() && entries_[i_].range.Contains(id)) return entries_[i_].actual;
    return 0.0;
  }

 private:
  const std::vector<SimEntry>& entries_;
  size_t i_ = 0;
};

// All ids where either list's value may change: entry begins and ends+1,
// sorted and deduplicated.
std::vector<SegmentId> CriticalPoints(const SimilarityList& a, const SimilarityList& b) {
  std::vector<SegmentId> pts;
  pts.reserve(2 * (a.entries().size() + b.entries().size()));
  for (const SimEntry& e : a.entries()) {
    pts.push_back(e.range.begin);
    pts.push_back(e.range.end + 1);
  }
  for (const SimEntry& e : b.entries()) {
    pts.push_back(e.range.begin);
    pts.push_back(e.range.end + 1);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

// Runs Combine(va, vb) over every maximal run where both inputs are
// constant, producing a canonical list with the given max.
template <typename Combine>
SimilarityList ZipMerge(const SimilarityList& a, const SimilarityList& b, double max,
                        Combine combine) {
  std::vector<SegmentId> pts = CriticalPoints(a, b);
  RunCursor ca(a), cb(b);
  std::vector<SimEntry> out;
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const Interval run{pts[i], pts[i + 1] - 1};
    const double v = combine(ca.ValueAt(run.begin), cb.ValueAt(run.begin));
    if (v > 0.0) out.push_back(SimEntry{run, v});
  }
  return SimilarityList::FromEntriesOrDie(std::move(out), max);
}

}  // namespace

SimilarityList AndMerge(const SimilarityList& g, const SimilarityList& h) {
  HTL_OBS_COUNT("sim.and_merge.calls", 1);
  HTL_OBS_COUNT("sim.and_merge.entries_in", g.length() + h.length());
  return ZipMerge(g, h, g.max() + h.max(), [](double a, double b) { return a + b; });
}

SimilarityList FuzzyMinAndMerge(const SimilarityList& g, const SimilarityList& h) {
  HTL_OBS_COUNT("sim.fuzzy_and_merge.calls", 1);
  HTL_OBS_COUNT("sim.fuzzy_and_merge.entries_in", g.length() + h.length());
  const double mg = g.max();
  const double mh = h.max();
  const double out_max = mg + mh;
  return ZipMerge(g, h, out_max, [=](double a, double b) {
    const double frac_g = mg > 0 ? a / mg : 0.0;
    const double frac_h = mh > 0 ? b / mh : 0.0;
    return std::min(frac_g, frac_h) * out_max;
  });
}

SimilarityList OrMerge(const SimilarityList& g, const SimilarityList& h) {
  HTL_OBS_COUNT("sim.or_merge.calls", 1);
  HTL_OBS_COUNT("sim.or_merge.entries_in", g.length() + h.length());
  return ZipMerge(g, h, std::max(g.max(), h.max()),
                  [](double a, double b) { return std::max(a, b); });
}

SimilarityList NextShift(const SimilarityList& g) {
  HTL_OBS_COUNT("sim.next_shift.calls", 1);
  std::vector<SimEntry> out;
  out.reserve(g.entries().size());
  for (const SimEntry& e : g.entries()) {
    Interval shifted{std::max<SegmentId>(1, e.range.begin - 1), e.range.end - 1};
    if (!shifted.empty()) out.push_back(SimEntry{shifted, e.actual});
  }
  return SimilarityList::FromEntriesOrDie(std::move(out), g.max());
}

std::vector<Interval> ThresholdSupport(const SimilarityList& g, double tau) {
  std::vector<Interval> support;
  const double cutoff = tau * g.max();
  for (const SimEntry& e : g.entries()) {
    if (e.actual + 1e-12 < cutoff) continue;
    if (!support.empty() && (support.back().Adjacent(e.range) || support.back().end >= e.range.begin)) {
      support.back().end = std::max(support.back().end, e.range.end);
    } else {
      support.push_back(e.range);
    }
  }
  return support;
}

namespace {

// Shared backward sweep for until/eventually. `g_support` is the coalesced
// id set where the left operand clears the threshold; when
// `g_always == true` the support is the whole axis (eventually).
SimilarityList BackwardUntilSweep(const std::vector<Interval>& g_support, bool g_always,
                                  const SimilarityList& h) {
  // Critical points of h and of the support intervals.
  std::vector<SegmentId> pts;
  pts.reserve(2 * (h.entries().size() + g_support.size()));
  for (const SimEntry& e : h.entries()) {
    pts.push_back(e.range.begin);
    pts.push_back(e.range.end + 1);
  }
  for (const Interval& iv : g_support) {
    pts.push_back(iv.begin);
    pts.push_back(iv.end + 1);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 2) return SimilarityList(h.max());

  // Constant-value runs, scanned right-to-left. `carry` is f(run.end + 1).
  // Runs above the last critical point and gaps between runs are handled by
  // the fact that every boundary is a critical point; beyond the top, f = 0
  // unless g_always (where carry just stays whatever the suffix max is — it
  // starts at 0 there too since h is 0 beyond its last entry).
  std::vector<SimEntry> reversed;
  double carry = 0.0;
  // Reverse cursors: walk entries from the back.
  const auto& hs = h.entries();
  size_t hi = hs.size();
  size_t gi = g_support.size();
  for (size_t p = pts.size() - 1; p-- > 0;) {
    const Interval run{pts[p], pts[p + 1] - 1};
    while (hi > 0 && hs[hi - 1].range.begin > run.begin) --hi;
    double hv = 0.0;
    if (hi > 0 && hs[hi - 1].range.Contains(run.begin)) hv = hs[hi - 1].actual;
    bool gok = g_always;
    if (!gok) {
      while (gi > 0 && g_support[gi - 1].begin > run.begin) --gi;
      gok = gi > 0 && g_support[gi - 1].Contains(run.begin);
    }
    const double res = gok ? std::max(hv, carry) : hv;
    carry = res;
    if (res > 0.0) reversed.push_back(SimEntry{run, res});
  }
  // Below the lowest critical point h is zero, so f(u) = carry wherever the
  // left operand holds. For `eventually` (g_always) that extends the final
  // carry down to id 1; for `until` those ids lie outside every support
  // interval and carry nothing.
  if (g_always && carry > 0.0 && pts.front() > 1) {
    reversed.push_back(SimEntry{Interval{1, pts.front() - 1}, carry});
  }
  std::reverse(reversed.begin(), reversed.end());
  return SimilarityList::FromEntriesOrDie(std::move(reversed), h.max());
}

}  // namespace

SimilarityList UntilMerge(const SimilarityList& g, const SimilarityList& h, double tau) {
  HTL_OBS_COUNT("sim.until_merge.calls", 1);
  HTL_OBS_COUNT("sim.until_merge.entries_in", g.length() + h.length());
  return BackwardUntilSweep(ThresholdSupport(g, tau), /*g_always=*/false, h);
}

SimilarityList Eventually(const SimilarityList& h) {
  HTL_OBS_COUNT("sim.eventually.calls", 1);
  HTL_OBS_COUNT("sim.eventually.entries_in", h.length());
  return BackwardUntilSweep({}, /*g_always=*/true, h);
}

SimilarityList Complement(const SimilarityList& g, const Interval& bounds) {
  HTL_OBS_COUNT("sim.complement.calls", 1);
  std::vector<SimEntry> out;
  if (bounds.empty()) return SimilarityList(g.max());
  SegmentId cursor = bounds.begin;
  auto emit = [&](const Interval& range, double value) {
    Interval cut = range.Intersect(bounds);
    if (cut.empty() || value <= 0.0) return;
    out.push_back(SimEntry{cut, value});
  };
  for (const SimEntry& e : g.entries()) {
    if (e.range.begin > cursor) emit(Interval{cursor, e.range.begin - 1}, g.max());
    emit(e.range, g.max() - e.actual);
    cursor = std::max(cursor, e.range.end + 1);
    if (cursor > bounds.end) break;
  }
  if (cursor <= bounds.end) emit(Interval{cursor, bounds.end}, g.max());
  return SimilarityList::FromEntriesOrDie(std::move(out), g.max());
}

SimilarityList MultiMax(std::vector<SimilarityList> lists) {
  HTL_OBS_COUNT("sim.multi_max.calls", 1);
  if (lists.empty()) return SimilarityList(0.0);
  // Tournament merge: each of the ceil(log2 m) rounds touches every entry
  // once, giving the O(l log m) bound of section 3.2.
  while (lists.size() > 1) {
    std::vector<SimilarityList> next;
    next.reserve((lists.size() + 1) / 2);
    for (size_t i = 0; i + 1 < lists.size(); i += 2) {
      next.push_back(OrMerge(lists[i], lists[i + 1]));
    }
    if (lists.size() % 2 == 1) next.push_back(std::move(lists.back()));
    lists = std::move(next);
  }
  return std::move(lists.front());
}

}  // namespace htl
