#include "sim/list_ops.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/merge_kernels.h"
#include "util/logging.h"

namespace htl {

// The algorithm cores live in sim/merge_kernels.h, shared with the
// arena-backed VM kernels (src/vm/vm.cc) so both executors run the same
// float expressions in the same order. This file instantiates them with
// std::vector storage and the SimilarityList validation/canonicalization
// of FromEntriesOrDie.

namespace {

kernel::EntrySpan Runs(const SimilarityList& l) {
  return kernel::EntrySpan{l.entries().data(), l.entries().size()};
}

template <typename Combine>
SimilarityList ZipMerge(const SimilarityList& a, const SimilarityList& b, double max,
                        Combine combine) {
  std::vector<SegmentId> pts;
  pts.reserve(2 * (a.entries().size() + b.entries().size()));
  std::vector<SimEntry> out;
  kernel::ZipMergeInto(Runs(a), Runs(b), combine, pts, out);
  return SimilarityList::FromEntriesOrDie(std::move(out), max);
}

}  // namespace

SimilarityList AndMerge(const SimilarityList& g, const SimilarityList& h) {
  HTL_OBS_COUNT("sim.and_merge.calls", 1);
  HTL_OBS_COUNT("sim.and_merge.entries_in", g.length() + h.length());
  return ZipMerge(g, h, g.max() + h.max(), [](double a, double b) { return a + b; });
}

SimilarityList FuzzyMinAndMerge(const SimilarityList& g, const SimilarityList& h) {
  HTL_OBS_COUNT("sim.fuzzy_and_merge.calls", 1);
  HTL_OBS_COUNT("sim.fuzzy_and_merge.entries_in", g.length() + h.length());
  const double mg = g.max();
  const double mh = h.max();
  const double out_max = mg + mh;
  return ZipMerge(g, h, out_max, [=](double a, double b) {
    const double frac_g = mg > 0 ? a / mg : 0.0;
    const double frac_h = mh > 0 ? b / mh : 0.0;
    return std::min(frac_g, frac_h) * out_max;
  });
}

SimilarityList OrMerge(const SimilarityList& g, const SimilarityList& h) {
  HTL_OBS_COUNT("sim.or_merge.calls", 1);
  HTL_OBS_COUNT("sim.or_merge.entries_in", g.length() + h.length());
  return ZipMerge(g, h, std::max(g.max(), h.max()),
                  [](double a, double b) { return std::max(a, b); });
}

SimilarityList NextShift(const SimilarityList& g) {
  HTL_OBS_COUNT("sim.next_shift.calls", 1);
  std::vector<SimEntry> out;
  out.reserve(g.entries().size());
  kernel::NextShiftInto(Runs(g), out);
  return SimilarityList::FromEntriesOrDie(std::move(out), g.max());
}

std::vector<Interval> ThresholdSupport(const SimilarityList& g, double tau) {
  std::vector<Interval> support;
  kernel::ThresholdSupportInto(Runs(g), tau * g.max(), support);
  return support;
}

namespace {

// Shared backward sweep for until/eventually; see kernel::BackwardUntilSweepInto.
SimilarityList BackwardUntilSweep(const std::vector<Interval>& g_support, bool g_always,
                                  const SimilarityList& h) {
  std::vector<SegmentId> pts;
  pts.reserve(2 * (h.entries().size() + g_support.size()));
  std::vector<SimEntry> reversed;
  kernel::BackwardUntilSweepInto(kernel::IntervalSpan{g_support.data(), g_support.size()},
                                 g_always, Runs(h), pts, reversed);
  std::reverse(reversed.begin(), reversed.end());
  return SimilarityList::FromEntriesOrDie(std::move(reversed), h.max());
}

}  // namespace

SimilarityList UntilMerge(const SimilarityList& g, const SimilarityList& h, double tau) {
  HTL_OBS_COUNT("sim.until_merge.calls", 1);
  HTL_OBS_COUNT("sim.until_merge.entries_in", g.length() + h.length());
  return BackwardUntilSweep(ThresholdSupport(g, tau), /*g_always=*/false, h);
}

SimilarityList Eventually(const SimilarityList& h) {
  HTL_OBS_COUNT("sim.eventually.calls", 1);
  HTL_OBS_COUNT("sim.eventually.entries_in", h.length());
  return BackwardUntilSweep({}, /*g_always=*/true, h);
}

SimilarityList Complement(const SimilarityList& g, const Interval& bounds) {
  HTL_OBS_COUNT("sim.complement.calls", 1);
  std::vector<SimEntry> out;
  kernel::ComplementInto(Runs(g), g.max(), bounds, out);
  return SimilarityList::FromEntriesOrDie(std::move(out), g.max());
}

SimilarityList MultiMax(std::vector<SimilarityList> lists) {
  HTL_OBS_COUNT("sim.multi_max.calls", 1);
  if (lists.empty()) return SimilarityList(0.0);
  // Tournament merge: each of the ceil(log2 m) rounds touches every entry
  // once, giving the O(l log m) bound of section 3.2.
  while (lists.size() > 1) {
    std::vector<SimilarityList> next;
    next.reserve((lists.size() + 1) / 2);
    for (size_t i = 0; i + 1 < lists.size(); i += 2) {
      next.push_back(OrMerge(lists[i], lists[i + 1]));
    }
    if (lists.size() % 2 == 1) next.push_back(std::move(lists.back()));
    lists = std::move(next);
  }
  return std::move(lists.front());
}

}  // namespace htl
