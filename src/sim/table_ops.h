#ifndef HTL_SIM_TABLE_OPS_H_
#define HTL_SIM_TABLE_OPS_H_

#include <functional>
#include <string>
#include <vector>

#include "sim/sim_table.h"
#include "sim/value_table.h"

namespace htl {

/// Operator algebra over similarity tables (sections 3.2 and 3.3).

/// How JoinTables combines the similarity lists of matching rows.
enum class TableCombine {
  kAnd,       // AndMerge: pointwise sum, max = lhs_max + rhs_max.
  kFuzzyAnd,  // FuzzyMinAndMerge: min of fractions (alternative semantics).
  kUntil,     // UntilMerge(lhs, rhs, tau): max = rhs_max.
  kOr,        // OrMerge: pointwise max (extension), max = max(lhs_max, rhs_max).
};

/// Natural outer join of two similarity tables: rows match when their
/// bindings agree on common object-variable columns (the wildcard
/// SimilarityTable::kAnyObject matches anything) and their ranges intersect
/// on common attribute-variable columns. Matching rows' lists are combined
/// per `op`; unmatched rows are preserved with an empty list on the missing
/// side (which the list operators turn into the correct partial-match
/// semantics: AND keeps the present side's values; UNTIL keeps unmatched
/// rhs rows — the u''==u case — and drops unmatched lhs rows).
///
/// `lhs_max`/`rhs_max` are the static formula maxima of the two operands;
/// they must be supplied because an empty table cannot carry its max.
/// Result rows with identical keys are max-merged.
SimilarityTable JoinTables(const SimilarityTable& lhs, double lhs_max,
                           const SimilarityTable& rhs, double rhs_max, TableCombine op,
                           double tau);

/// Existential quantification: removes the given object-variable columns
/// and max-merges rows whose remaining keys coincide (section 2.5's
/// "maximum over evaluations").
SimilarityTable CollapseExists(const SimilarityTable& table,
                               const std::vector<std::string>& vars);

/// Freeze-quantifier join (section 3.3): consumes attribute-variable column
/// `attr_var` of `table` by joining with the value table of the attribute
/// function q. A row survives for each value z of q (under a compatible
/// object binding) lying in the row's range; its list is clipped to the
/// intervals where q == z. Rows whose range is unbounded pass through
/// unchanged (the variable was unconstrained, so the value of q is
/// irrelevant). Result rows with identical keys are max-merged.
SimilarityTable FreezeJoin(const SimilarityTable& table, const std::string& attr_var,
                           const ValueTable& values);

/// Applies `fn` to every row's similarity list (e.g. NextShift or
/// Eventually), dropping rows whose mapped list is empty.
SimilarityTable MapLists(const SimilarityTable& table,
                         const std::function<SimilarityList(const SimilarityList&)>& fn);

/// Intersects a list with a sorted-disjoint interval set, keeping values.
SimilarityList ClipToIntervals(const SimilarityList& list,
                               const std::vector<Interval>& keep);

}  // namespace htl

#endif  // HTL_SIM_TABLE_OPS_H_
