#include "sim/similarity.h"

#include "util/string_util.h"

namespace htl {

std::string Sim::ToString() const {
  return StrCat("(", actual, "/", max, ")");
}

}  // namespace htl
