#ifndef HTL_SIM_MERGE_KERNELS_H_
#define HTL_SIM_MERGE_KERNELS_H_

#include <algorithm>
#include <cstddef>

#include "sim/sim_list.h"
#include "util/interval.h"

namespace htl {
namespace kernel {

/// Algorithm cores of the similarity-list operators (the section 3.1
/// linear sweeps), shared between the heap-backed entry points in
/// list_ops.cc and the arena-backed VM kernels in src/vm/vm.cc.
///
/// Both callers instantiate the *same* templates, so the float expressions
/// run in the same order with the same intermediate values — which is what
/// makes the compiled engine bit-identical to the interpreter by
/// construction rather than by coincidence (DESIGN.md "Compiled
/// execution"). Do not fork these algorithms; the differential battery
/// (tests/property/vm_differential_test.cc) exists to catch exactly that.
///
/// Inputs are runs of a canonical SimilarityList (sorted, disjoint,
/// actual > 0, adjacent equal runs merged). Outputs are raw runs: sorted,
/// disjoint, actual > 0, but adjacent equal-valued runs are NOT merged
/// here — the heap path canonicalizes in SimilarityList::FromEntries, the
/// VM path in its arena append (vm::CanonicalizeInPlace).
///
/// The `Vec` template parameters need push_back/size/operator[]/back and
/// value-type SimEntry, Interval, or SegmentId as named; std::vector and
/// vm::ArenaVec both qualify. Every kernel's output size is bounded by the
/// limits documented per function, so arena callers can reserve exactly.

/// Contiguous view over a list's entries (std::span without <span>).
struct EntrySpan {
  const SimEntry* data = nullptr;
  size_t size = 0;

  const SimEntry* begin() const { return data; }
  const SimEntry* end() const { return data + size; }
  const SimEntry& operator[](size_t i) const { return data[i]; }
  bool empty() const { return size == 0; }
};

struct IntervalSpan {
  const Interval* data = nullptr;
  size_t size = 0;

  const Interval* begin() const { return data; }
  const Interval* end() const { return data + size; }
  const Interval& operator[](size_t i) const { return data[i]; }
};

/// Forward cursor over a list's entries: value lookups at non-decreasing
/// ids in amortized O(1).
class RunCursor {
 public:
  explicit RunCursor(EntrySpan entries) : entries_(entries) {}

  double ValueAt(SegmentId id) {
    while (i_ < entries_.size && entries_[i_].range.end < id) ++i_;
    if (i_ < entries_.size && entries_[i_].range.Contains(id)) return entries_[i_].actual;
    return 0.0;
  }

 private:
  EntrySpan entries_;
  size_t i_ = 0;
};

/// All ids where either list's value may change: entry begins and ends+1,
/// sorted and deduplicated. Appends to `pts` (caller passes it empty).
/// Output size <= 2 * (a.size + b.size).
template <typename PtsVec>
void CriticalPointsInto(EntrySpan a, EntrySpan b, PtsVec& pts) {
  for (const SimEntry& e : a) {
    pts.push_back(e.range.begin);
    pts.push_back(e.range.end + 1);
  }
  for (const SimEntry& e : b) {
    pts.push_back(e.range.begin);
    pts.push_back(e.range.end + 1);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
}

/// Runs Combine(va, vb) over every maximal run where both inputs are
/// constant. `pts` is scratch (passed empty); `out` receives raw runs.
/// Output size <= 2 * (a.size + b.size) - 1.
template <typename Combine, typename PtsVec, typename OutVec>
void ZipMergeInto(EntrySpan a, EntrySpan b, Combine combine, PtsVec& pts, OutVec& out) {
  CriticalPointsInto(a, b, pts);
  RunCursor ca(a), cb(b);
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    const Interval run{pts[i], pts[i + 1] - 1};
    const double v = combine(ca.ValueAt(run.begin), cb.ValueAt(run.begin));
    if (v > 0.0) out.push_back(SimEntry{run, v});
  }
}

/// Shifts every run one id toward the sequence start (`next` over lists).
/// Output size <= g.size.
template <typename OutVec>
void NextShiftInto(EntrySpan g, OutVec& out) {
  for (const SimEntry& e : g) {
    Interval shifted{std::max<SegmentId>(1, e.range.begin - 1), e.range.end - 1};
    if (!shifted.empty()) out.push_back(SimEntry{shifted, e.actual});
  }
}

/// The coalesced id set where `g` clears `cutoff` (= tau * g's max).
/// Output size <= g.size.
template <typename IntervalVec>
void ThresholdSupportInto(EntrySpan g, double cutoff, IntervalVec& support) {
  for (const SimEntry& e : g) {
    if (e.actual + 1e-12 < cutoff) continue;
    if (support.size() > 0 &&
        (support.back().Adjacent(e.range) || support.back().end >= e.range.begin)) {
      support.back().end = std::max(support.back().end, e.range.end);
    } else {
      support.push_back(e.range);
    }
  }
}

/// Shared backward sweep for until/eventually. `g_support` is the coalesced
/// id set where the left operand clears the threshold; when
/// `g_always == true` the support is the whole axis (eventually). `pts` is
/// scratch (passed empty); `out` receives raw runs in *reverse* order — the
/// caller reverses (and the heap caller validates via FromEntries).
/// Output size <= 2 * (h.size + g_support.size).
template <typename PtsVec, typename OutVec>
void BackwardUntilSweepInto(IntervalSpan g_support, bool g_always, EntrySpan h,
                            PtsVec& pts, OutVec& out) {
  // Critical points of h and of the support intervals.
  for (const SimEntry& e : h) {
    pts.push_back(e.range.begin);
    pts.push_back(e.range.end + 1);
  }
  for (const Interval& iv : g_support) {
    pts.push_back(iv.begin);
    pts.push_back(iv.end + 1);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  if (pts.size() < 2) return;

  // Constant-value runs, scanned right-to-left. `carry` is f(run.end + 1).
  // Runs above the last critical point and gaps between runs are handled by
  // the fact that every boundary is a critical point; beyond the top, f = 0
  // unless g_always (where carry just stays whatever the suffix max is — it
  // starts at 0 there too since h is 0 beyond its last entry).
  double carry = 0.0;
  size_t hi = h.size;
  size_t gi = g_support.size;
  for (size_t p = pts.size() - 1; p-- > 0;) {
    const Interval run{pts[p], pts[p + 1] - 1};
    while (hi > 0 && h[hi - 1].range.begin > run.begin) --hi;
    double hv = 0.0;
    if (hi > 0 && h[hi - 1].range.Contains(run.begin)) hv = h[hi - 1].actual;
    bool gok = g_always;
    if (!gok) {
      while (gi > 0 && g_support[gi - 1].begin > run.begin) --gi;
      gok = gi > 0 && g_support[gi - 1].Contains(run.begin);
    }
    const double res = gok ? std::max(hv, carry) : hv;
    carry = res;
    if (res > 0.0) out.push_back(SimEntry{run, res});
  }
  // Below the lowest critical point h is zero, so f(u) = carry wherever the
  // left operand holds. For `eventually` (g_always) that extends the final
  // carry down to id 1; for `until` those ids lie outside every support
  // interval and carry nothing.
  if (g_always && carry > 0.0 && pts[0] > 1) {
    out.push_back(SimEntry{Interval{1, pts[0] - 1}, carry});
  }
}

/// Complement over `bounds`: gaps get g_max, covered runs g_max - actual.
/// Output size <= 2 * g.size + 1.
template <typename OutVec>
void ComplementInto(EntrySpan g, double g_max, const Interval& bounds, OutVec& out) {
  if (bounds.empty()) return;
  SegmentId cursor = bounds.begin;
  auto emit = [&](const Interval& range, double value) {
    Interval cut = range.Intersect(bounds);
    if (cut.empty() || value <= 0.0) return;
    out.push_back(SimEntry{cut, value});
  };
  for (const SimEntry& e : g) {
    if (e.range.begin > cursor) emit(Interval{cursor, e.range.begin - 1}, g_max);
    emit(e.range, g_max - e.actual);
    cursor = std::max(cursor, e.range.end + 1);
    if (cursor > bounds.end) break;
  }
  if (cursor <= bounds.end) emit(Interval{cursor, bounds.end}, g_max);
}

/// Clips every run to `bounds`. Output size <= g.size.
template <typename OutVec>
void ClipInto(EntrySpan g, const Interval& bounds, OutVec& out) {
  for (const SimEntry& e : g) {
    Interval cut = e.range.Intersect(bounds);
    if (!cut.empty()) out.push_back(SimEntry{cut, e.actual});
  }
}

}  // namespace kernel
}  // namespace htl

#endif  // HTL_SIM_MERGE_KERNELS_H_
