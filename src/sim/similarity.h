#ifndef HTL_SIM_SIMILARITY_H_
#define HTL_SIM_SIMILARITY_H_

#include <string>

namespace htl {

/// A similarity value per section 2.5: a pair (actual, max) with
/// 0 <= actual <= max. `max` depends only on the formula, never on the video
/// segment; actual == max means an exact match. The scalar the user sees is
/// the fractional similarity actual/max.
struct Sim {
  double actual = 0.0;
  double max = 0.0;

  /// actual/max; 0 when max == 0 (the degenerate empty formula).
  double fraction() const { return max > 0 ? actual / max : 0.0; }

  friend bool operator==(const Sim& a, const Sim& b) {
    return a.actual == b.actual && a.max == b.max;
  }

  std::string ToString() const;
};

}  // namespace htl

#endif  // HTL_SIM_SIMILARITY_H_
