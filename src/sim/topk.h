#ifndef HTL_SIM_TOPK_H_
#define HTL_SIM_TOPK_H_

#include <vector>

#include "sim/sim_list.h"

namespace htl {

/// One retrieved segment with its similarity.
struct RankedSegment {
  SegmentId id = kInvalidSegmentId;
  Sim sim;

  friend bool operator==(const RankedSegment& a, const RankedSegment& b) {
    return a.id == b.id && a.sim == b.sim;
  }
};

/// The k segments with the highest similarity values in `list` ("the top k
/// video segments ... will be retrieved", section 1). Ties and the segments
/// within one interval entry are ordered by ascending id. Returns fewer than
/// k when the list covers fewer ids. O(length log length + k).
std::vector<RankedSegment> TopKSegments(const SimilarityList& list, int64_t k);

/// One retrieved interval entry with its similarity — the row shape the
/// paper's result tables print (Tables 3 and 4 list interval rows sorted by
/// descending similarity).
struct RankedEntry {
  SimEntry entry;
  double max = 0.0;
};

/// All entries of `list` sorted by descending actual similarity, then by
/// ascending begin id — the order of the paper's Table 4.
std::vector<RankedEntry> RankedEntries(const SimilarityList& list);

}  // namespace htl

#endif  // HTL_SIM_TOPK_H_
