#ifndef HTL_SIM_LIST_OPS_H_
#define HTL_SIM_LIST_OPS_H_

#include <vector>

#include "sim/sim_list.h"
#include "util/interval.h"

namespace htl {

/// The similarity-list operator algebra of section 3.1. Every function runs
/// in O(n1 + n2) over the entry counts of its inputs (MultiMax is
/// O(total * log m)), matching the complexities claimed in the paper.

/// Conjunction f = g AND h: pointwise sum of actual values (a segment on one
/// list only keeps that list's value — partial satisfaction), max = mg + mh.
SimilarityList AndMerge(const SimilarityList& g, const SimilarityList& h);

/// Fuzzy conjunction (the AndSemantics::kFuzzyMin alternative similarity
/// function): fraction' = min(frac_g, frac_h), encoded with
/// max = mg + mh so that maxima remain a function of the formula. Segments
/// absent from either list score 0.
SimilarityList FuzzyMinAndMerge(const SimilarityList& g, const SimilarityList& h);

/// Pointwise maximum. Used to collapse the rows of an existentially
/// quantified table (all rows share one max) and for the disjunction
/// extension; output max = max(mg, mh).
SimilarityList OrMerge(const SimilarityList& g, const SimilarityList& h);

/// f = next g: entry [u, v] becomes [u-1, v-1]; ids below 1 are dropped
/// (and the last segment of a sequence implicitly gets similarity 0).
SimilarityList NextShift(const SimilarityList& g);

/// f = g until h with g-threshold `tau` on *fractional* similarity
/// (section 2.5: only whether g clears the threshold matters, not its
/// value). Defined by the classical expansion
///     f(u) = max( h(u), [frac(g,u) >= tau] * f(u+1) )
/// evaluated right-to-left over interval runs; reproduces the worked
/// example of figure 2 exactly. Output max = h.max.
SimilarityList UntilMerge(const SimilarityList& g, const SimilarityList& h, double tau);

/// f = eventually h == (true until h): running suffix maximum,
/// f(u) = max(h(u), f(u+1)). Output max = h.max.
SimilarityList Eventually(const SimilarityList& h);

/// The coalesced support {u : frac(g,u) >= tau} as disjoint intervals —
/// the preprocessed L1 of the paper's until algorithm. Exposed for tests
/// and for the SQL translator.
std::vector<Interval> ThresholdSupport(const SimilarityList& g, double tau);

/// Pointwise maximum of m lists (empty input yields an empty list with
/// max 0). Divide-and-conquer merge: O(l log m) for total entry count l —
/// the "modified m-way merge" of section 3.2.
SimilarityList MultiMax(std::vector<SimilarityList> lists);

/// f = not g over the segment ids in `bounds`: actual' = max - actual
/// (the natural involution on (actual, max) pairs; an extension — the
/// paper's similarity semantics excludes negation from the optimized
/// classes, see section 2.5). Ids outside `bounds` stay uncovered.
SimilarityList Complement(const SimilarityList& g, const Interval& bounds);

}  // namespace htl

#endif  // HTL_SIM_LIST_OPS_H_
