#include "sim/value_range.h"

#include "util/string_util.h"

namespace htl {

ValueRange ValueRange::Empty() {
  ValueRange r;
  r.lower_ = AttrValue(int64_t{1});
  r.upper_ = AttrValue(int64_t{0});
  return r;
}

ValueRange ValueRange::Exactly(AttrValue v) {
  ValueRange r;
  r.lower_ = v;
  r.upper_ = std::move(v);
  return r;
}

ValueRange ValueRange::LessThan(AttrValue v) {
  ValueRange r;
  r.upper_ = std::move(v);
  r.upper_open_ = true;
  return r;
}

ValueRange ValueRange::AtMost(AttrValue v) {
  ValueRange r;
  r.upper_ = std::move(v);
  return r;
}

ValueRange ValueRange::GreaterThan(AttrValue v) {
  ValueRange r;
  r.lower_ = std::move(v);
  r.lower_open_ = true;
  return r;
}

ValueRange ValueRange::AtLeast(AttrValue v) {
  ValueRange r;
  r.lower_ = std::move(v);
  return r;
}

bool ValueRange::IsEmpty() const {
  if (!lower_ || !upper_) return false;
  if (lower_->LessThan(*upper_)) return false;
  if (*lower_ == *upper_) return lower_open_ || upper_open_;
  return true;  // lower > upper (or incomparable kinds).
}

bool ValueRange::Contains(const AttrValue& v) const {
  if (v.is_null() && (lower_ || upper_)) return false;
  if (lower_) {
    if (lower_open_) {
      if (!lower_->LessThan(v)) return false;
    } else {
      if (!(*lower_ == v) && !lower_->LessThan(v)) return false;
    }
  }
  if (upper_) {
    if (upper_open_) {
      if (!v.LessThan(*upper_)) return false;
    } else {
      if (!(v == *upper_) && !v.LessThan(*upper_)) return false;
    }
  }
  return true;
}

ValueRange ValueRange::Intersect(const ValueRange& o) const {
  ValueRange r = *this;
  if (o.lower_) {
    if (!r.lower_ || r.lower_->LessThan(*o.lower_) ||
        (*r.lower_ == *o.lower_ && o.lower_open_)) {
      r.lower_ = o.lower_;
      r.lower_open_ = o.lower_open_;
    }
  }
  if (o.upper_) {
    if (!r.upper_ || o.upper_->LessThan(*r.upper_) ||
        (*r.upper_ == *o.upper_ && o.upper_open_)) {
      r.upper_ = o.upper_;
      r.upper_open_ = o.upper_open_;
    }
  }
  return r;
}

bool operator==(const ValueRange& a, const ValueRange& b) {
  auto opt_eq = [](const std::optional<AttrValue>& x, const std::optional<AttrValue>& y) {
    if (x.has_value() != y.has_value()) return false;
    return !x.has_value() || *x == *y;
  };
  return opt_eq(a.lower_, b.lower_) && opt_eq(a.upper_, b.upper_) &&
         a.lower_open_ == b.lower_open_ && a.upper_open_ == b.upper_open_;
}

std::string ValueRange::ToString() const {
  std::string lo = lower_ ? StrCat(lower_open_ ? "(" : "[", lower_->ToString()) : "(-inf";
  std::string hi = upper_ ? StrCat(upper_->ToString(), upper_open_ ? ")" : "]") : "+inf)";
  return StrCat(lo, ",", hi);
}

}  // namespace htl
