#include "sim/sim_list.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

namespace {

// Drops zero entries and merges adjacent equal-valued runs, in place.
std::vector<SimEntry> Canonicalize(std::vector<SimEntry> entries) {
  std::vector<SimEntry> out;
  out.reserve(entries.size());
  for (SimEntry& e : entries) {
    if (e.actual <= 0.0 || e.range.empty()) continue;
    if (!out.empty() && out.back().actual == e.actual && out.back().range.Adjacent(e.range)) {
      out.back().range.end = e.range.end;
    } else {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace

Result<SimilarityList> SimilarityList::FromEntries(std::vector<SimEntry> entries,
                                                   double max) {
  if (max < 0) return Status::InvalidArgument("negative max similarity");
  SegmentId prev_end = 0;
  bool first = true;
  for (const SimEntry& e : entries) {
    if (e.range.empty()) {
      return Status::InvalidArgument(StrCat("empty interval ", e.range.ToString()));
    }
    if (!first && e.range.begin <= prev_end) {
      return Status::InvalidArgument(
          StrCat("entries not sorted/disjoint at ", e.range.ToString()));
    }
    if (e.actual < 0 || e.actual > max) {
      return Status::InvalidArgument(
          StrCat("actual ", e.actual, " outside [0, ", max, "]"));
    }
    prev_end = e.range.end;
    first = false;
  }
  SimilarityList list(max);
  list.entries_ = Canonicalize(std::move(entries));
  HTL_DCHECK_OK(list.CheckInvariants());
  return list;
}

SimilarityList SimilarityList::FromEntriesOrDie(std::vector<SimEntry> entries,
                                                double max) {
  Result<SimilarityList> r = FromEntries(std::move(entries), max);
  HTL_CHECK(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

SimilarityList SimilarityList::FromDense(const std::vector<double>& values, double max,
                                         SegmentId first_id) {
  SimilarityList list(max);
  size_t i = 0;
  while (i < values.size()) {
    if (values[i] <= 0.0) {
      ++i;
      continue;
    }
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i]) ++j;
    HTL_CHECK_LE(values[i], max);
    list.entries_.push_back(SimEntry{
        Interval{first_id + static_cast<SegmentId>(i), first_id + static_cast<SegmentId>(j) - 1},
        values[i]});
    i = j;
  }
  HTL_DCHECK_OK(list.CheckInvariants());
  return list;
}

Sim SimilarityList::ValueAt(SegmentId id) const { return Sim{ActualAt(id), max_}; }

double SimilarityList::ActualAt(SegmentId id) const {
  // First entry whose begin is > id, then check its predecessor.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), id,
      [](SegmentId v, const SimEntry& e) { return v < e.range.begin; });
  if (it == entries_.begin()) return 0.0;
  --it;
  return it->range.Contains(id) ? it->actual : 0.0;
}

int64_t SimilarityList::CoveredIds() const {
  int64_t n = 0;
  for (const SimEntry& e : entries_) n += e.range.size();
  return n;
}

SimilarityList SimilarityList::Clip(const Interval& bounds) const {
  SimilarityList out(max_);
  for (const SimEntry& e : entries_) {
    Interval cut = e.range.Intersect(bounds);
    if (!cut.empty()) out.entries_.push_back(SimEntry{cut, e.actual});
  }
  HTL_DCHECK_OK(out.CheckInvariants());
  return out;
}

SimilarityList SimilarityList::WithMax(double new_max) const {
  SimilarityList out(new_max);
  out.entries_ = entries_;
  for (const SimEntry& e : out.entries_) {
    HTL_CHECK_LE(e.actual, new_max) << "WithMax would break actual <= max";
  }
  return out;
}

Status SimilarityList::CheckInvariants() const {
  if (max_ < 0) {
    return Status::Internal(StrCat("negative max similarity ", max_));
  }
  for (size_t i = 0; i < entries_.size(); ++i) {
    const SimEntry& e = entries_[i];
    if (e.range.empty()) {
      return Status::Internal(StrCat("entry ", i, " has empty range ", e.range.ToString()));
    }
    if (e.actual <= 0) {
      return Status::Internal(
          StrCat("entry ", i, " has actual ", e.actual, " <= 0 (zero runs are dropped)"));
    }
    if (e.actual > max_) {
      return Status::Internal(
          StrCat("entry ", i, " has actual ", e.actual, " > max ", max_));
    }
    if (i > 0) {
      const SimEntry& prev = entries_[i - 1];
      if (e.range.begin <= prev.range.end) {
        return Status::Internal(StrCat("entries ", i - 1, " and ", i,
                                       " not sorted/disjoint: ", prev.range.ToString(),
                                       " then ", e.range.ToString()));
      }
      if (prev.range.Adjacent(e.range) && prev.actual == e.actual) {
        return Status::Internal(StrCat("entries ", i - 1, " and ", i,
                                       " form an unmerged equal-valued run at ",
                                       e.range.ToString()));
      }
    }
  }
  return Status::OK();
}

std::string SimilarityList::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const SimEntry& e : entries_) {
    if (!first) out += ", ";
    out += StrCat(e.range.ToString(), ":", e.actual);
    first = false;
  }
  out += StrCat("} max=", max_);
  return out;
}

}  // namespace htl
