#ifndef HTL_SIM_SIM_LIST_H_
#define HTL_SIM_SIM_LIST_H_

#include <string>
#include <vector>

#include "sim/similarity.h"
#include "util/interval.h"
#include "util/result.h"

namespace htl {

/// One similarity-list entry ([beg_id, end_id], act_sim) — section 3.1. The
/// max similarity is not stored per entry because it is identical for every
/// entry of a list (it depends only on the formula).
struct SimEntry {
  Interval range;
  double actual = 0.0;

  friend bool operator==(const SimEntry& a, const SimEntry& b) {
    return a.range == b.range && a.actual == b.actual;
  }
};

/// A similarity list (a.k.a. similarity table column): interval-run-encoded
/// similarity values of one formula over one proper sequence of video
/// segments. Invariants:
///   * entries are sorted by range.begin and pairwise disjoint;
///   * every entry has actual > 0 (ids not covered have similarity zero);
///   * adjacent entries with equal actual are merged (canonical form);
///   * 0 < actual <= max() for every entry.
class SimilarityList {
 public:
  SimilarityList() = default;

  /// A list with no entries and the given formula maximum.
  explicit SimilarityList(double max) : max_(max) {}

  /// Builds a list from entries that must already be sorted and disjoint;
  /// zero-actual entries are dropped, adjacent equal-valued runs merged.
  /// Returns InvalidArgument when sorting/disjointness/actual<=max fail.
  static Result<SimilarityList> FromEntries(std::vector<SimEntry> entries, double max);

  /// As FromEntries but aborts on invalid input — for literals in tests.
  static SimilarityList FromEntriesOrDie(std::vector<SimEntry> entries, double max);

  /// Builds from a dense vector: value[i] is the similarity of segment
  /// first_id + i. Runs of equal nonzero values become entries.
  static SimilarityList FromDense(const std::vector<double>& values, double max,
                                  SegmentId first_id = 1);

  const std::vector<SimEntry>& entries() const { return entries_; }
  double max() const { return max_; }
  int64_t length() const { return static_cast<int64_t>(entries_.size()); }
  bool empty() const { return entries_.empty(); }

  /// Similarity at segment `id` (0 when not covered).
  Sim ValueAt(SegmentId id) const;

  /// Actual value at `id`; 0 when not covered. O(log length).
  double ActualAt(SegmentId id) const;

  /// Total number of segment ids covered by entries.
  int64_t CoveredIds() const;

  /// Restricts the list to ids within `bounds` (used when evaluating over a
  /// proper sub-sequence, e.g. the children of one node).
  SimilarityList Clip(const Interval& bounds) const;

  /// Returns a copy with max replaced (entries must still satisfy
  /// actual <= new_max; checked).
  SimilarityList WithMax(double new_max) const;

  /// Validates the class invariants listed above (sorted, disjoint,
  /// canonical merged form, 0 < actual <= max). Returns OK or an Internal
  /// status naming the first violation. O(length); production call sites go
  /// through HTL_DCHECK_OK so the walk compiles out under NDEBUG.
  Status CheckInvariants() const;

  /// Human-readable one-line form, e.g. "{[10,24]:10, [25,60]:15} max=20".
  std::string ToString() const;

  friend bool operator==(const SimilarityList& a, const SimilarityList& b) {
    return a.max_ == b.max_ && a.entries_ == b.entries_;
  }

 private:
  std::vector<SimEntry> entries_;
  double max_ = 0.0;
};

}  // namespace htl

#endif  // HTL_SIM_SIM_LIST_H_
