#include "sim/sim_table.h"

#include "sim/list_ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

SimilarityTable SimilarityTable::FromList(SimilarityList list) {
  SimilarityTable t;
  if (!list.empty()) {
    t.rows_.push_back(Row{{}, {}, std::move(list)});
  } else {
    // Keep the empty list's max by storing the row anyway only if nonempty;
    // an empty list yields an empty table (max recoverable via fallback).
  }
  return t;
}

double SimilarityTable::MaxSim(double fallback_max) const {
  if (rows_.empty()) return fallback_max;
  return rows_.front().list.max();
}

int SimilarityTable::ObjectColumn(const std::string& var) const {
  for (size_t i = 0; i < object_vars_.size(); ++i) {
    if (object_vars_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

int SimilarityTable::AttrColumn(const std::string& var) const {
  for (size_t i = 0; i < attr_vars_.size(); ++i) {
    if (attr_vars_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

void SimilarityTable::AddRow(Row row) {
  HTL_CHECK_EQ(row.objects.size(), object_vars_.size());
  HTL_CHECK_EQ(row.ranges.size(), attr_vars_.size());
  if (row.list.empty()) return;  // Zero-similarity evaluations are not stored.
  HTL_DCHECK_OK(row.list.CheckInvariants());
  rows_.push_back(std::move(row));
}

SimilarityList SimilarityTable::ToList(double fallback_max) const {
  HTL_CHECK(object_vars_.empty() && attr_vars_.empty())
      << "ToList on a table with variable columns";
  if (rows_.empty()) return SimilarityList(fallback_max);
  std::vector<SimilarityList> lists;
  lists.reserve(rows_.size());
  for (const Row& r : rows_) lists.push_back(r.list);
  return MultiMax(std::move(lists));
}

Status SimilarityTable::CheckInvariants() const {
  for (size_t i = 0; i < rows_.size(); ++i) {
    const Row& r = rows_[i];
    if (r.objects.size() != object_vars_.size()) {
      return Status::Internal(StrCat("row ", i, " has ", r.objects.size(),
                                     " object bindings for ", object_vars_.size(),
                                     " object columns"));
    }
    if (r.ranges.size() != attr_vars_.size()) {
      return Status::Internal(StrCat("row ", i, " has ", r.ranges.size(),
                                     " value ranges for ", attr_vars_.size(),
                                     " attribute columns"));
    }
    if (r.list.empty()) {
      return Status::Internal(
          StrCat("row ", i, " holds an empty list (zero rows are not stored)"));
    }
    HTL_RETURN_IF_ERROR(r.list.CheckInvariants());
    if (r.list.max() != rows_.front().list.max()) {
      return Status::Internal(StrCat("row ", i, " has max ", r.list.max(),
                                     " but row 0 has ", rows_.front().list.max(),
                                     " (all rows share the formula max)"));
    }
  }
  return Status::OK();
}

std::string SimilarityTable::ToString() const {
  std::string out =
      StrCat("table objects=(", StrJoin(object_vars_, ","), ") attrs=(",
             StrJoin(attr_vars_, ","), ") rows=", rows_.size(), "\n");
  for (const Row& r : rows_) {
    out += "  [";
    for (size_t i = 0; i < r.objects.size(); ++i) {
      out += i ? "," : "";
      out += r.objects[i] == kAnyObject ? "*" : StrCat(r.objects[i]);
    }
    out += "|";
    for (size_t i = 0; i < r.ranges.size(); ++i) {
      out += i ? "," : "";
      out += r.ranges[i].ToString();
    }
    out += StrCat("] ", r.list.ToString(), "\n");
  }
  return out;
}

}  // namespace htl
