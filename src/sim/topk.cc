#include "sim/topk.h"

#include <algorithm>

namespace htl {

std::vector<RankedSegment> TopKSegments(const SimilarityList& list, int64_t k) {
  std::vector<RankedSegment> out;
  if (k <= 0) return out;
  // Sort entries by descending value (ties by ascending begin), then expand
  // ids until k are produced.
  std::vector<SimEntry> entries = list.entries();
  std::stable_sort(entries.begin(), entries.end(), [](const SimEntry& a, const SimEntry& b) {
    if (a.actual != b.actual) return a.actual > b.actual;
    return a.range.begin < b.range.begin;
  });
  for (const SimEntry& e : entries) {
    for (SegmentId id = e.range.begin; id <= e.range.end; ++id) {
      out.push_back(RankedSegment{id, Sim{e.actual, list.max()}});
      if (static_cast<int64_t>(out.size()) == k) return out;
    }
  }
  return out;
}

std::vector<RankedEntry> RankedEntries(const SimilarityList& list) {
  std::vector<RankedEntry> out;
  out.reserve(list.entries().size());
  for (const SimEntry& e : list.entries()) out.push_back(RankedEntry{e, list.max()});
  std::stable_sort(out.begin(), out.end(), [](const RankedEntry& a, const RankedEntry& b) {
    if (a.entry.actual != b.entry.actual) return a.entry.actual > b.entry.actual;
    return a.entry.range.begin < b.entry.range.begin;
  });
  return out;
}

}  // namespace htl
