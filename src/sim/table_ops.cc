#include "sim/table_ops.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "obs/metrics.h"
#include "sim/list_ops.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace htl {

namespace {

using Row = SimilarityTable::Row;

constexpr ObjectId kAny = SimilarityTable::kAnyObject;

// Column mapping from an input table into the joined output schema.
struct ColumnMap {
  std::vector<int> object_to_out;  // input object col -> output object col
  std::vector<int> attr_to_out;    // input attr col -> output attr col
};

struct JoinSchema {
  std::vector<std::string> object_vars;
  std::vector<std::string> attr_vars;
  ColumnMap lhs, rhs;
  // Common columns as (lhs index, rhs index) pairs.
  std::vector<std::pair<int, int>> common_objects;
};

JoinSchema MakeJoinSchema(const SimilarityTable& lhs, const SimilarityTable& rhs) {
  JoinSchema s;
  s.object_vars = lhs.object_vars();
  s.attr_vars = lhs.attr_vars();
  s.lhs.object_to_out.resize(lhs.object_vars().size());
  for (size_t i = 0; i < lhs.object_vars().size(); ++i) {
    s.lhs.object_to_out[i] = static_cast<int>(i);
  }
  s.lhs.attr_to_out.resize(lhs.attr_vars().size());
  for (size_t i = 0; i < lhs.attr_vars().size(); ++i) {
    s.lhs.attr_to_out[i] = static_cast<int>(i);
  }
  s.rhs.object_to_out.resize(rhs.object_vars().size());
  for (size_t i = 0; i < rhs.object_vars().size(); ++i) {
    int lhs_col = lhs.ObjectColumn(rhs.object_vars()[i]);
    if (lhs_col >= 0) {
      s.rhs.object_to_out[i] = lhs_col;
      s.common_objects.emplace_back(lhs_col, static_cast<int>(i));
    } else {
      s.object_vars.push_back(rhs.object_vars()[i]);
      s.rhs.object_to_out[i] = static_cast<int>(s.object_vars.size() - 1);
    }
  }
  s.rhs.attr_to_out.resize(rhs.attr_vars().size());
  for (size_t i = 0; i < rhs.attr_vars().size(); ++i) {
    int lhs_col = lhs.AttrColumn(rhs.attr_vars()[i]);
    if (lhs_col >= 0) {
      s.rhs.attr_to_out[i] = lhs_col;
    } else {
      s.attr_vars.push_back(rhs.attr_vars()[i]);
      s.rhs.attr_to_out[i] = static_cast<int>(s.attr_vars.size() - 1);
    }
  }
  return s;
}

// True when the two bindings can denote the same object (wildcard matches
// anything).
bool ObjectsCompatible(ObjectId a, ObjectId b) { return a == kAny || b == kAny || a == b; }

// Key for hashing concrete common-column bindings.
std::string CommonKey(const Row& row, const std::vector<std::pair<int, int>>& commons,
                      bool lhs_side) {
  std::string key;
  for (const auto& [lc, rc] : commons) {
    key += StrCat(row.objects[static_cast<size_t>(lhs_side ? lc : rc)], "|");
  }
  return key;
}

bool HasWildcardInCommons(const Row& row, const std::vector<std::pair<int, int>>& commons,
                          bool lhs_side) {
  for (const auto& [lc, rc] : commons) {
    if (row.objects[static_cast<size_t>(lhs_side ? lc : rc)] == kAny) return true;
  }
  return false;
}

// Merges rows with identical (objects, ranges) keys by max-merging lists.
std::vector<Row> DedupRows(std::vector<Row> rows) {
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < rows.size(); ++i) {
    std::string key;
    for (ObjectId o : rows[i].objects) key += StrCat(o, "|");
    for (const ValueRange& r : rows[i].ranges) key += r.ToString() + "|";
    groups[key].push_back(i);
  }
  std::vector<Row> out;
  out.reserve(groups.size());
  for (auto& [key, idxs] : groups) {
    if (idxs.size() == 1) {
      out.push_back(std::move(rows[idxs[0]]));
      continue;
    }
    std::vector<SimilarityList> lists;
    lists.reserve(idxs.size());
    for (size_t i : idxs) lists.push_back(std::move(rows[i].list));
    Row merged = std::move(rows[idxs[0]]);
    merged.list = MultiMax(std::move(lists));
    out.push_back(std::move(merged));
  }
  return out;
}

}  // namespace

SimilarityTable JoinTables(const SimilarityTable& lhs, double lhs_max,
                           const SimilarityTable& rhs, double rhs_max, TableCombine op,
                           double tau) {
  HTL_OBS_COUNT("sim.table_join.calls", 1);
  HTL_OBS_COUNT("sim.table_join.rows_in", lhs.num_rows() + rhs.num_rows());
  const JoinSchema schema = MakeJoinSchema(lhs, rhs);
  SimilarityTable out(schema.object_vars, schema.attr_vars);

  auto combine = [&](const SimilarityList& a, const SimilarityList& b) {
    switch (op) {
      case TableCombine::kAnd:
        return AndMerge(a, b);
      case TableCombine::kFuzzyAnd:
        return FuzzyMinAndMerge(a, b);
      case TableCombine::kUntil:
        return UntilMerge(a, b, tau);
      case TableCombine::kOr:
        return OrMerge(a, b);
    }
    HTL_LOG(Fatal) << "unreachable";
    return SimilarityList();
  };
  const SimilarityList empty_lhs(lhs_max);
  const SimilarityList empty_rhs(rhs_max);

  std::vector<Row> produced;

  // Projects one input row into the output schema with wildcard padding.
  auto project_lhs = [&](const Row& lr) {
    Row nr;
    nr.objects.assign(schema.object_vars.size(), kAny);
    nr.ranges.assign(schema.attr_vars.size(), ValueRange::All());
    for (size_t i = 0; i < lr.objects.size(); ++i) {
      nr.objects[static_cast<size_t>(schema.lhs.object_to_out[i])] = lr.objects[i];
    }
    for (size_t i = 0; i < lr.ranges.size(); ++i) {
      nr.ranges[static_cast<size_t>(schema.lhs.attr_to_out[i])] = lr.ranges[i];
    }
    return nr;
  };
  auto project_rhs = [&](const Row& rr) {
    Row nr;
    nr.objects.assign(schema.object_vars.size(), kAny);
    nr.ranges.assign(schema.attr_vars.size(), ValueRange::All());
    for (size_t i = 0; i < rr.objects.size(); ++i) {
      nr.objects[static_cast<size_t>(schema.rhs.object_to_out[i])] = rr.objects[i];
    }
    for (size_t i = 0; i < rr.ranges.size(); ++i) {
      nr.ranges[static_cast<size_t>(schema.rhs.attr_to_out[i])] = rr.ranges[i];
    }
    return nr;
  };

  // Emits the combined row for one compatible pair (skips incompatible).
  auto emit_pair = [&](const Row& lr, const Row& rr) {
    for (const auto& [lc, rc] : schema.common_objects) {
      if (!ObjectsCompatible(lr.objects[static_cast<size_t>(lc)],
                             rr.objects[static_cast<size_t>(rc)])) {
        return;
      }
    }
    Row nr = project_lhs(lr);
    for (size_t i = 0; i < rr.objects.size(); ++i) {
      int oc = schema.rhs.object_to_out[i];
      if (rr.objects[i] != kAny) nr.objects[static_cast<size_t>(oc)] = rr.objects[i];
    }
    for (size_t i = 0; i < rr.ranges.size(); ++i) {
      int ac = schema.rhs.attr_to_out[i];
      ValueRange merged = nr.ranges[static_cast<size_t>(ac)].Intersect(rr.ranges[i]);
      if (merged.IsEmpty()) return;
      nr.ranges[static_cast<size_t>(ac)] = merged;
    }
    nr.list = combine(lr.list, rr.list);
    if (!nr.list.empty()) produced.push_back(std::move(nr));
  };

  // Stage 1: pairwise combined rows. Hash the rhs by its concrete
  // common-column bindings; rows with wildcards in common columns are
  // matched by a linear pass (they are rare — only outer joins make them).
  std::unordered_map<std::string, std::vector<size_t>> rhs_by_key;
  std::vector<size_t> rhs_loose;
  for (size_t i = 0; i < rhs.rows().size(); ++i) {
    if (HasWildcardInCommons(rhs.rows()[i], schema.common_objects, /*lhs_side=*/false)) {
      rhs_loose.push_back(i);
    } else {
      rhs_by_key[CommonKey(rhs.rows()[i], schema.common_objects, false)].push_back(i);
    }
  }
  for (const Row& lr : lhs.rows()) {
    if (HasWildcardInCommons(lr, schema.common_objects, /*lhs_side=*/true)) {
      for (const Row& rr : rhs.rows()) emit_pair(lr, rr);
      continue;
    }
    auto it = rhs_by_key.find(CommonKey(lr, schema.common_objects, true));
    if (it != rhs_by_key.end()) {
      for (size_t i : it->second) emit_pair(lr, rhs.rows()[i]);
    }
    for (size_t i : rhs_loose) emit_pair(lr, rhs.rows()[i]);
  }

  // Stage 2: one-sided rows. These realize partial satisfaction — the value
  // of the formula for evaluations where the other operand scores zero
  // (bindings or attribute values the other side's table does not cover).
  // Where a combined row also applies, the combined row dominates pointwise
  // (AndMerge and UntilMerge are monotone in each operand), so keeping both
  // is sound under the max-over-rows semantics of evaluation collapse.
  for (const Row& lr : lhs.rows()) {
    Row nr = project_lhs(lr);
    nr.list = combine(lr.list, empty_rhs);
    if (!nr.list.empty()) produced.push_back(std::move(nr));
  }
  for (const Row& rr : rhs.rows()) {
    Row nr = project_rhs(rr);
    nr.list = combine(empty_lhs, rr.list);
    if (!nr.list.empty()) produced.push_back(std::move(nr));
  }

  for (Row& r : DedupRows(std::move(produced))) out.AddRow(std::move(r));
  return out;
}

SimilarityTable CollapseExists(const SimilarityTable& table,
                               const std::vector<std::string>& vars) {
  HTL_OBS_COUNT("sim.exists_collapse.calls", 1);
  HTL_OBS_COUNT("sim.exists_collapse.rows_in", table.num_rows());
  std::vector<bool> drop(table.object_vars().size(), false);
  for (const std::string& v : vars) {
    int c = table.ObjectColumn(v);
    if (c >= 0) drop[static_cast<size_t>(c)] = true;
  }
  std::vector<std::string> kept_vars;
  for (size_t i = 0; i < table.object_vars().size(); ++i) {
    if (!drop[i]) kept_vars.push_back(table.object_vars()[i]);
  }
  SimilarityTable out(kept_vars, table.attr_vars());
  std::vector<Row> produced;
  produced.reserve(table.rows().size());
  for (const Row& r : table.rows()) {
    Row nr;
    for (size_t i = 0; i < r.objects.size(); ++i) {
      if (!drop[i]) nr.objects.push_back(r.objects[i]);
    }
    nr.ranges = r.ranges;
    nr.list = r.list;
    produced.push_back(std::move(nr));
  }
  for (Row& r : DedupRows(std::move(produced))) out.AddRow(std::move(r));
  return out;
}

SimilarityList ClipToIntervals(const SimilarityList& list,
                               const std::vector<Interval>& keep) {
  std::vector<SimEntry> out;
  size_t ki = 0;
  for (const SimEntry& e : list.entries()) {
    while (ki < keep.size() && keep[ki].end < e.range.begin) ++ki;
    for (size_t k = ki; k < keep.size() && keep[k].begin <= e.range.end; ++k) {
      Interval cut = e.range.Intersect(keep[k]);
      if (!cut.empty()) out.push_back(SimEntry{cut, e.actual});
    }
  }
  return SimilarityList::FromEntriesOrDie(std::move(out), list.max());
}

SimilarityTable FreezeJoin(const SimilarityTable& table, const std::string& attr_var,
                           const ValueTable& values) {
  HTL_OBS_COUNT("sim.freeze_join.calls", 1);
  HTL_OBS_COUNT("sim.freeze_join.rows_in", table.num_rows());
  const int yc = table.AttrColumn(attr_var);
  if (yc < 0) return table;  // The variable never occurs: no-op.

  // Output schema: object vars of the table, then value-table-only vars;
  // attr vars minus the consumed one.
  std::vector<std::string> object_vars = table.object_vars();
  std::vector<int> vt_obj_to_out(values.object_vars().size());
  std::vector<std::pair<int, int>> common;  // (table col, value-table col)
  for (size_t i = 0; i < values.object_vars().size(); ++i) {
    int tc = table.ObjectColumn(values.object_vars()[i]);
    if (tc >= 0) {
      vt_obj_to_out[i] = tc;
      common.emplace_back(tc, static_cast<int>(i));
    } else {
      object_vars.push_back(values.object_vars()[i]);
      vt_obj_to_out[i] = static_cast<int>(object_vars.size() - 1);
    }
  }
  std::vector<std::string> attr_vars;
  for (size_t i = 0; i < table.attr_vars().size(); ++i) {
    if (static_cast<int>(i) != yc) attr_vars.push_back(table.attr_vars()[i]);
  }
  SimilarityTable out(object_vars, attr_vars);

  std::vector<Row> produced;
  for (const Row& tr : table.rows()) {
    const ValueRange& range = tr.ranges[static_cast<size_t>(yc)];
    auto project = [&](const ValueTable::Row* vr) {
      Row nr;
      nr.objects.assign(object_vars.size(), kAny);
      for (size_t i = 0; i < tr.objects.size(); ++i) nr.objects[i] = tr.objects[i];
      if (vr != nullptr) {
        for (size_t i = 0; i < vr->objects.size(); ++i) {
          nr.objects[static_cast<size_t>(vt_obj_to_out[i])] = vr->objects[i];
        }
      }
      for (size_t i = 0; i < tr.ranges.size(); ++i) {
        if (static_cast<int>(i) != yc) nr.ranges.push_back(tr.ranges[i]);
      }
      return nr;
    };
    if (!range.has_lower() && !range.has_upper()) {
      // Unconstrained variable: the value of q is irrelevant; pass through.
      Row nr = project(nullptr);
      nr.list = tr.list;
      produced.push_back(std::move(nr));
      continue;
    }
    for (const ValueTable::Row& vr : values.rows()) {
      bool compatible = true;
      for (const auto& [tc, vc] : common) {
        if (!ObjectsCompatible(tr.objects[static_cast<size_t>(tc)],
                               vr.objects[static_cast<size_t>(vc)])) {
          compatible = false;
          break;
        }
      }
      if (!compatible || !range.Contains(vr.value)) continue;
      Row nr = project(&vr);
      nr.list = ClipToIntervals(tr.list, vr.where);
      if (!nr.list.empty()) produced.push_back(std::move(nr));
    }
  }
  for (Row& r : DedupRows(std::move(produced))) out.AddRow(std::move(r));
  return out;
}

SimilarityTable MapLists(const SimilarityTable& table,
                         const std::function<SimilarityList(const SimilarityList&)>& fn) {
  SimilarityTable out(table.object_vars(), table.attr_vars());
  for (const Row& r : table.rows()) {
    Row nr = r;
    nr.list = fn(r.list);
    if (!nr.list.empty()) out.AddRow(std::move(nr));
  }
  return out;
}

}  // namespace htl
