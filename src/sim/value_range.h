#ifndef HTL_SIM_VALUE_RANGE_H_
#define HTL_SIM_VALUE_RANGE_H_

#include <optional>
#include <string>

#include "model/value.h"

namespace htl {

/// A range of attribute values, used for attribute-variable columns in
/// similarity tables (section 3.3): the paper restricts attribute-variable
/// predicates to y < q, y <= q, y = q, y >= q, y > q (integers; equality
/// only for other types), so the satisfying set of a conjunction of such
/// predicates is always one interval of values.
class ValueRange {
 public:
  /// The unconstrained range (-inf, +inf).
  ValueRange() = default;

  static ValueRange All() { return ValueRange(); }
  /// A canonical empty range (contains nothing).
  static ValueRange Empty();
  static ValueRange Exactly(AttrValue v);
  static ValueRange LessThan(AttrValue v);
  static ValueRange AtMost(AttrValue v);
  static ValueRange GreaterThan(AttrValue v);
  static ValueRange AtLeast(AttrValue v);

  bool has_lower() const { return lower_.has_value(); }
  bool has_upper() const { return upper_.has_value(); }
  const AttrValue& lower() const { return *lower_; }
  const AttrValue& upper() const { return *upper_; }
  bool lower_open() const { return lower_open_; }
  bool upper_open() const { return upper_open_; }

  /// True when no value can satisfy the range (e.g. (5, 5]).
  bool IsEmpty() const;

  /// True when `v` lies in the range. Null values never match a bounded
  /// range; mixed string/numeric bounds never match.
  bool Contains(const AttrValue& v) const;

  /// Intersection of the two ranges (may be empty; check IsEmpty).
  ValueRange Intersect(const ValueRange& o) const;

  friend bool operator==(const ValueRange& a, const ValueRange& b);

  /// e.g. "(-inf,5]", "[3,3]", "(2,+inf)".
  std::string ToString() const;

 private:
  std::optional<AttrValue> lower_;
  std::optional<AttrValue> upper_;
  bool lower_open_ = false;
  bool upper_open_ = false;
};

}  // namespace htl

#endif  // HTL_SIM_VALUE_RANGE_H_
