#ifndef HTL_SIM_SIM_TABLE_H_
#define HTL_SIM_SIM_TABLE_H_

#include <string>
#include <vector>

#include "model/object.h"
#include "sim/sim_list.h"
#include "sim/value_range.h"
#include "util/result.h"

namespace htl {

/// A similarity table (section 3.2 / 3.3): the result of evaluating a
/// subformula with free variables. Each row gives
///   * a binding of every free *object* variable to an object id — or the
///     wildcard kAnyObject when the subformula does not constrain it (used
///     to represent partial matches preserved by outer joins);
///   * a range of values for every free *attribute* variable;
///   * a similarity list over video segments, valid for exactly the
///     evaluations described by the first two parts.
class SimilarityTable {
 public:
  /// Wildcard object binding: "this row holds for any object here".
  static constexpr ObjectId kAnyObject = kInvalidObjectId;

  struct Row {
    std::vector<ObjectId> objects;   // Parallel to object_vars().
    std::vector<ValueRange> ranges;  // Parallel to attr_vars().
    SimilarityList list;
  };

  SimilarityTable() = default;
  SimilarityTable(std::vector<std::string> object_vars, std::vector<std::string> attr_vars)
      : object_vars_(std::move(object_vars)), attr_vars_(std::move(attr_vars)) {}

  /// A no-variable table holding a single row with `list` — the shape of a
  /// closed subformula's result.
  static SimilarityTable FromList(SimilarityList list);

  const std::vector<std::string>& object_vars() const { return object_vars_; }
  const std::vector<std::string>& attr_vars() const { return attr_vars_; }
  const std::vector<Row>& rows() const { return rows_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// Max similarity of the underlying formula: taken from any row's list
  /// (all rows share it); `fallback_max` when the table has no rows.
  double MaxSim(double fallback_max = 0.0) const;

  /// Index of an object-variable column, or -1.
  int ObjectColumn(const std::string& var) const;
  /// Index of an attribute-variable column, or -1.
  int AttrColumn(const std::string& var) const;

  /// Appends a row; checks column arity and that empty lists are not added.
  void AddRow(Row row);

  /// The single similarity list of a no-variable table (max-merges rows if
  /// several accumulated); `fallback_max` when empty.
  SimilarityList ToList(double fallback_max = 0.0) const;

  /// Validates table invariants: every row has object/range arity matching
  /// the variable columns, a non-empty list satisfying
  /// SimilarityList::CheckInvariants(), and all rows share one max (the
  /// formula's static maximum). O(total entries); call via HTL_DCHECK_OK.
  Status CheckInvariants() const;

  /// Multi-line debug form.
  std::string ToString() const;

 private:
  std::vector<std::string> object_vars_;
  std::vector<std::string> attr_vars_;
  std::vector<Row> rows_;
};

}  // namespace htl

#endif  // HTL_SIM_SIM_TABLE_H_
