#ifndef HTL_ANALYZER_CUT_DETECTION_H_
#define HTL_ANALYZER_CUT_DETECTION_H_

#include <cstdint>
#include <vector>

#include "util/result.h"

namespace htl {

/// Shot segmentation by cut detection — the "video analyzer" stage of
/// figure 1 ("the movie was segmented into smaller sequences (called shots)
/// using a method called cut-detection [21, 11]", section 4.1). Real
/// detectors threshold the frame-to-frame difference of color histograms;
/// this substrate implements exactly that over per-frame feature vectors,
/// so the pipeline from raw frames to the hierarchical model is exercised
/// end to end even without decoding actual video.

/// A per-frame feature: a normalized histogram (any fixed number of bins).
struct FrameFeatures {
  std::vector<double> histogram;
};

/// Options for the detector.
struct CutDetectorOptions {
  /// A cut is declared between frames whose histogram L1-distance exceeds
  /// this threshold (histograms are normalized to sum 1, so the distance
  /// lies in [0, 2]).
  double threshold = 0.5;

  /// Minimum shot length in frames; boundaries closer than this to the
  /// previous one are suppressed (debouncing, as real detectors do to avoid
  /// flash-induced over-segmentation).
  int64_t min_shot_length = 2;
};

/// L1 distance between two equally sized histograms.
double HistogramDistance(const FrameFeatures& a, const FrameFeatures& b);

/// Returns the first frame index (0-based) of every shot: always starts
/// with 0; a boundary at i means a cut between frames i-1 and i.
/// InvalidArgument if frames have inconsistent histogram sizes.
Result<std::vector<int64_t>> DetectCuts(const std::vector<FrameFeatures>& frames,
                                        const CutDetectorOptions& options = {});

/// Index of the key frame for the shot spanning frames [begin, end): the
/// frame minimizing the summed distance to the rest of the shot (the
/// medoid) — "in practice a key frame can be extracted from a shot and
/// meta-data is associated with the key frame" (section 1).
Result<int64_t> SelectKeyFrame(const std::vector<FrameFeatures>& frames, int64_t begin,
                               int64_t end);

}  // namespace htl

#endif  // HTL_ANALYZER_CUT_DETECTION_H_
