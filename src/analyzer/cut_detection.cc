#include "analyzer/cut_detection.h"

#include <cmath>

#include "util/string_util.h"

namespace htl {

double HistogramDistance(const FrameFeatures& a, const FrameFeatures& b) {
  double sum = 0;
  const size_t n = std::min(a.histogram.size(), b.histogram.size());
  for (size_t i = 0; i < n; ++i) sum += std::abs(a.histogram[i] - b.histogram[i]);
  for (size_t i = n; i < a.histogram.size(); ++i) sum += std::abs(a.histogram[i]);
  for (size_t i = n; i < b.histogram.size(); ++i) sum += std::abs(b.histogram[i]);
  return sum;
}

Result<std::vector<int64_t>> DetectCuts(const std::vector<FrameFeatures>& frames,
                                        const CutDetectorOptions& options) {
  if (options.threshold < 0) return Status::InvalidArgument("negative threshold");
  if (options.min_shot_length < 1) {
    return Status::InvalidArgument("min_shot_length must be >= 1");
  }
  std::vector<int64_t> boundaries;
  if (frames.empty()) return boundaries;
  const size_t bins = frames[0].histogram.size();
  for (const FrameFeatures& f : frames) {
    if (f.histogram.size() != bins) {
      return Status::InvalidArgument(
          StrCat("inconsistent histogram sizes: ", bins, " vs ", f.histogram.size()));
    }
  }
  boundaries.push_back(0);
  for (size_t i = 1; i < frames.size(); ++i) {
    if (HistogramDistance(frames[i - 1], frames[i]) <= options.threshold) continue;
    if (static_cast<int64_t>(i) - boundaries.back() < options.min_shot_length) continue;
    boundaries.push_back(static_cast<int64_t>(i));
  }
  return boundaries;
}

Result<int64_t> SelectKeyFrame(const std::vector<FrameFeatures>& frames, int64_t begin,
                               int64_t end) {
  if (begin < 0 || end > static_cast<int64_t>(frames.size()) || begin >= end) {
    return Status::InvalidArgument(StrCat("bad shot range [", begin, ",", end, ")"));
  }
  int64_t best = begin;
  double best_cost = -1;
  for (int64_t i = begin; i < end; ++i) {
    double cost = 0;
    for (int64_t j = begin; j < end; ++j) {
      if (i != j) {
        cost += HistogramDistance(frames[static_cast<size_t>(i)],
                                  frames[static_cast<size_t>(j)]);
      }
    }
    if (best_cost < 0 || cost < best_cost) {
      best_cost = cost;
      best = i;
    }
  }
  return best;
}

}  // namespace htl
