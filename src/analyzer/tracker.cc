#include "analyzer/tracker.h"

#include <algorithm>

namespace htl {

double Iou(const BoundingBox& a, const BoundingBox& b) {
  if (!a.Valid() || !b.Valid()) return 0;
  const double ix = std::max(0.0, std::min(a.right(), b.right()) - std::max(a.x, b.x));
  const double iy =
      std::max(0.0, std::min(a.bottom(), b.bottom()) - std::max(a.y, b.y));
  const double inter = ix * iy;
  const double uni = a.area() + b.area() - inter;
  return uni > 0 ? inter / uni : 0;
}

Result<std::vector<std::vector<TrackedDetection>>> TrackObjects(
    const std::vector<std::vector<Detection>>& detections,
    const TrackerOptions& options) {
  if (options.min_iou < 0 || options.min_iou > 1) {
    return Status::InvalidArgument("min_iou must lie in [0, 1]");
  }
  if (options.max_gap < 0) return Status::InvalidArgument("negative max_gap");

  struct Track {
    ObjectId id;
    BoundingBox last_box;
    std::string label;
    int64_t last_frame;
  };
  std::vector<Track> tracks;
  ObjectId next_id = options.first_id;

  std::vector<std::vector<TrackedDetection>> out(detections.size());
  for (size_t f = 0; f < detections.size(); ++f) {
    const int64_t frame = static_cast<int64_t>(f);
    const auto& dets = detections[f];
    // Candidate (track, detection) pairs above the IoU gate, best first.
    struct Pair {
      double iou;
      size_t track;
      size_t det;
    };
    std::vector<Pair> pairs;
    for (size_t t = 0; t < tracks.size(); ++t) {
      if (frame - tracks[t].last_frame > options.max_gap + 1) continue;
      for (size_t d = 0; d < dets.size(); ++d) {
        if (tracks[t].label != dets[d].label) continue;
        const double iou = Iou(tracks[t].last_box, dets[d].box);
        if (iou >= options.min_iou && iou > 0) pairs.push_back({iou, t, d});
      }
    }
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const Pair& a, const Pair& b) { return a.iou > b.iou; });
    std::vector<bool> track_used(tracks.size(), false);
    std::vector<ObjectId> det_id(dets.size(), kInvalidObjectId);
    for (const Pair& p : pairs) {
      if (track_used[p.track] || det_id[p.det] != kInvalidObjectId) continue;
      track_used[p.track] = true;
      det_id[p.det] = tracks[p.track].id;
      tracks[p.track].last_box = dets[p.det].box;
      tracks[p.track].last_frame = frame;
    }
    // Unmatched detections start new tracks.
    for (size_t d = 0; d < dets.size(); ++d) {
      if (det_id[d] == kInvalidObjectId) {
        det_id[d] = next_id;
        tracks.push_back(Track{next_id, dets[d].box, dets[d].label, frame});
        ++next_id;
      }
      out[f].push_back(TrackedDetection{det_id[d], dets[d]});
    }
    // Drop expired tracks to keep matching linear-ish.
    tracks.erase(std::remove_if(tracks.begin(), tracks.end(),
                                [&](const Track& t) {
                                  return frame - t.last_frame > options.max_gap + 1;
                                }),
                 tracks.end());
  }
  return out;
}

}  // namespace htl
