#include "analyzer/pipeline.h"

#include "model/video_builder.h"
#include "picture/spatial.h"
#include "util/logging.h"

namespace htl {

Result<VideoTree> AnalyzeVideo(const std::vector<RawFrame>& frames,
                               const AnalyzerOptions& options) {
  if (frames.empty()) return Status::InvalidArgument("no frames to analyze");

  // 1. Shot boundaries from the feature stream.
  std::vector<FrameFeatures> features;
  features.reserve(frames.size());
  for (const RawFrame& f : frames) features.push_back(f.features);
  HTL_ASSIGN_OR_RETURN(std::vector<int64_t> boundaries,
                       DetectCuts(features, options.cuts));

  // 2. Stable object ids across the whole clip.
  std::vector<std::vector<Detection>> detections;
  detections.reserve(frames.size());
  for (const RawFrame& f : frames) detections.push_back(f.detections);
  HTL_ASSIGN_OR_RETURN(std::vector<std::vector<TrackedDetection>> tracked,
                       TrackObjects(detections, options.tracker));

  // 3. Assemble the hierarchy and its meta-data.
  VideoBuilder builder;
  builder.Meta(builder.root()).SetAttribute("frames",
                                            static_cast<int64_t>(frames.size()));
  auto frame_meta = [&](int64_t global_frame) {
    SegmentMeta meta;
    for (const TrackedDetection& td : tracked[static_cast<size_t>(global_frame)]) {
      ObjectAppearance obj;
      obj.id = td.id;
      obj.attributes["type"] = AttrValue(td.detection.label);
      SetBox(&obj, td.detection.box);
      meta.AddObject(std::move(obj));
    }
    if (options.derive_spatial_facts) DeriveSpatialFacts(&meta);
    return meta;
  };

  for (size_t s = 0; s < boundaries.size(); ++s) {
    const int64_t begin = boundaries[s];
    const int64_t end = s + 1 < boundaries.size() ? boundaries[s + 1]
                                                  : static_cast<int64_t>(frames.size());
    VideoBuilder::Handle shot = builder.AddChild(builder.root());
    HTL_ASSIGN_OR_RETURN(int64_t key, SelectKeyFrame(features, begin, end));
    SegmentMeta key_meta = frame_meta(key);
    key_meta.SetAttribute("key_frame", key + 1);
    key_meta.SetAttribute("first_frame", begin + 1);
    key_meta.SetAttribute("num_frames", end - begin);
    builder.Meta(shot) = std::move(key_meta);
    for (int64_t f = begin; f < end; ++f) {
      VideoBuilder::Handle frame = builder.AddChild(shot);
      builder.Meta(frame) = frame_meta(f);
    }
  }
  builder.NameLevel("shot", 2);
  builder.NameLevel("frame", 3);
  HTL_ASSIGN_OR_RETURN(VideoTree video, std::move(builder).Build());
  HTL_DCHECK_OK(video.CheckInvariants());
  return video;
}

}  // namespace htl
