#ifndef HTL_ANALYZER_TRACKER_H_
#define HTL_ANALYZER_TRACKER_H_

#include <vector>

#include "picture/spatial.h"
#include "util/result.h"

namespace htl {

/// Object tracking — the substrate behind the paper's universal-object-id
/// assumption: "once an object is identified in a frame of a scene, it is
/// easy to track it in subsequent frames until it disappears" (section 2.2,
/// citing [23]). Given per-frame anonymous detections (bounding boxes with
/// a type label), the tracker associates them across frames by greedy
/// best-IoU matching and assigns stable object ids.

/// One anonymous detection in one frame.
struct Detection {
  BoundingBox box;
  std::string label;  // e.g. "person", "airplane".
};

/// One tracked appearance: the detection plus its assigned stable id.
struct TrackedDetection {
  ObjectId id = kInvalidObjectId;
  Detection detection;
};

struct TrackerOptions {
  /// Minimum intersection-over-union with the track's last box for a
  /// detection to continue it.
  double min_iou = 0.3;

  /// Tracks missing for more than this many consecutive frames terminate
  /// (a later matching detection starts a new object id).
  int64_t max_gap = 0;

  /// First id handed out.
  ObjectId first_id = 1;
};

/// Intersection-over-union of two boxes; 0 when either is invalid.
double Iou(const BoundingBox& a, const BoundingBox& b);

/// Associates detections frame by frame. detections[f] are frame f's
/// detections; the result is parallel. Matching is greedy within a frame
/// (highest IoU pair first), label-gated (a "person" never continues an
/// "airplane" track), and respects options.max_gap.
Result<std::vector<std::vector<TrackedDetection>>> TrackObjects(
    const std::vector<std::vector<Detection>>& detections,
    const TrackerOptions& options = {});

}  // namespace htl

#endif  // HTL_ANALYZER_TRACKER_H_
