#ifndef HTL_ANALYZER_PIPELINE_H_
#define HTL_ANALYZER_PIPELINE_H_

#include <vector>

#include "analyzer/cut_detection.h"
#include "analyzer/tracker.h"
#include "model/video.h"
#include "util/result.h"

namespace htl {

/// The full video-analyzer pipeline of figure 1: raw frames -> cut
/// detection -> shots -> object tracking -> meta-data -> the hierarchical
/// model queried by HTL. Produces a three-level VideoTree (root / "shot" /
/// "frame") whose frame meta-data carries the tracked objects (with
/// bounding-box attributes and derived spatial facts) and whose shot
/// meta-data is the key frame's meta-data, as the paper describes.
struct RawFrame {
  FrameFeatures features;
  std::vector<Detection> detections;
};

struct AnalyzerOptions {
  CutDetectorOptions cuts;
  TrackerOptions tracker;
  /// Derive pairwise spatial facts (left_of, overlaps, ...) per frame.
  bool derive_spatial_facts = true;
};

/// Runs the pipeline. Frames must be non-empty. The resulting tree has the
/// levels named "shot" (2) and "frame" (3); every shot carries the integer
/// attribute "key_frame" (the 1-based global frame id of its medoid frame)
/// and copies the key frame's objects and facts.
Result<VideoTree> AnalyzeVideo(const std::vector<RawFrame>& frames,
                               const AnalyzerOptions& options = {});

}  // namespace htl

#endif  // HTL_ANALYZER_PIPELINE_H_
