// Figure 2 of the paper: the worked example of the `until` algorithm.
// Prints the input tables, runs the linear-time backward merge, verifies
// the output against the figure, then reports the operator's throughput on
// large random lists (the O(length(L1) + length(L2)) claim of section 3.1).

#include <cstdio>

#include "sim/list_ops.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/random_lists.h"

namespace {

void Print(const char* name, const htl::SimilarityList& list) {
  std::printf("%s:", name);
  for (const htl::SimEntry& e : list.entries()) {
    std::printf(" ([%lld %lld], %.0f)", static_cast<long long>(e.range.begin),
                static_cast<long long>(e.range.end), e.actual);
  }
  std::printf("   (max %.0f)\n", list.max());
}

}  // namespace

int main() {
  using namespace htl;

  std::printf("=== Figure 2: example of the algorithm for until ===\n\n");
  // L1 = thresholded g entries (values already discarded, shown as 20s).
  SimilarityList g = SimilarityList::FromEntriesOrDie(
      {{Interval{25, 100}, 20.0}, {Interval{200, 250}, 20.0}}, 20.0);
  SimilarityList h = SimilarityList::FromEntriesOrDie({{Interval{10, 50}, 10.0},
                                                       {Interval{55, 60}, 15.0},
                                                       {Interval{90, 110}, 12.0},
                                                       {Interval{125, 175}, 10.0}},
                                                      20.0);
  Print("L1 (g)", g);
  Print("L2 (h)", h);

  SimilarityList out = UntilMerge(g, h, 0.5);
  Print("output", out);

  SimilarityList expected = SimilarityList::FromEntriesOrDie({{Interval{10, 24}, 10.0},
                                                              {Interval{25, 60}, 15.0},
                                                              {Interval{61, 110}, 12.0},
                                                              {Interval{125, 175}, 10.0}},
                                                             20.0);
  const bool match = out == expected;
  std::printf("\npaper's figure reproduced: %s\n\n", match ? "yes" : "NO");

  std::printf("=== until throughput (linear in total entries) ===\n");
  std::printf("%-12s %-10s %-12s %s\n", "entries", "runs", "total (ms)", "ns/entry");
  for (int64_t n : {10'000, 40'000, 160'000, 640'000}) {
    Rng rng(99);
    RandomListOptions opts;
    opts.num_segments = n * 10;
    opts.coverage = 0.1;
    SimilarityList a = GenerateRandomList(rng, opts);
    SimilarityList b = GenerateRandomList(rng, opts);
    const int64_t entries = a.length() + b.length();
    const int kRuns = 20;
    WallTimer timer;
    int64_t side_effect = 0;
    for (int i = 0; i < kRuns; ++i) {
      side_effect += UntilMerge(a, b, 0.5).length();
    }
    const double ms = timer.ElapsedSeconds() * 1e3;
    std::printf("%-12lld %-10d %-12.2f %.1f%s\n", static_cast<long long>(entries),
                kRuns, ms, 1e6 * ms / (kRuns * static_cast<double>(entries)),
                side_effect == 0 ? "!" : "");
  }
  return match ? 0 : 1;
}
