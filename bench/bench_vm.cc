// Paired interpreter-vs-VM sweep over the four formula classes plus a
// merge-heavy set of deep temporal chains — the workload the bytecode VM's
// arena kernels were built for. Per formula both engines first have their
// results compared bit for bit, then run as interleaved best-of-rounds
// arms (scheduler drift and frequency scaling hit both alike).
//
// Gates (CI runs this binary directly; non-zero exit on failure):
//   - VM speedup on the merge-heavy set >= 1.3x the interpreter
//     (override with HTL_VM_SPEEDUP_LIMIT);
//   - the engine_mode dispatch layer in front of the interpreter costs
//     < 2% of a real interpreted query (override with
//     HTL_VM_INTERP_OVERHEAD_LIMIT). The dispatch probe times the full
//     entry path — mode switch, per-mode method call, argument validation,
//     Status construction — on a call that does no evaluation work, which
//     upper-bounds what `engine_mode=interpret` added to the old
//     interpreter entry.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "model/video.h"
#include "perf_common.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/video_gen.h"

namespace {

struct Case {
  const char* label;
  const char* text;
  bool merge_heavy;   // Counts toward the speedup gate.
  bool needs_levels;  // Runs on the 3-level video.
};

double EnvLimit(const char* name, double fallback) {
  if (const char* env = std::getenv(name); env != nullptr) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0) return parsed;
  }
  return fallback;
}

}  // namespace

int main() {
  using namespace htl;

  const double speedup_limit = EnvLimit("HTL_VM_SPEEDUP_LIMIT", 1.3);
  const double overhead_limit = EnvLimit("HTL_VM_INTERP_OVERHEAD_LIMIT", 0.02);

  bench::BenchJson json("vm");

  // A wide 2-level video (hundreds of leaf segments: long similarity lists,
  // so the merge kernels dominate) plus a 3-level one for the level operator.
  Rng rng(7031);
  VideoGenOptions wide;
  wide.levels = 2;
  wide.min_branching = 40;
  wide.max_branching = 52;
  wide.num_objects = 3;
  // Sparse objects fragment the similarity lists into many short runs, so
  // the merge kernels sweep realistic interval counts instead of a handful
  // of coalesced segments.
  wide.object_density = 0.12;
  VideoTree video = GenerateVideo(rng, wide);
  VideoGenOptions deep;
  deep.levels = 3;
  deep.min_branching = 4;
  deep.max_branching = 6;
  deep.num_objects = 6;
  VideoTree video3 = GenerateVideo(rng, deep);

  const Case cases[] = {
      // One arm per formula class.
      {"type1", "exists x (moving(x) and armed(x))", false, false},
      {"conjunctive", "exists x (present(x) and eventually moving(x))", false,
       false},
      {"extended",
       "exists x (moving(x)) and at-next-level(eventually exists y (armed(y)))",
       false, true},
      {"general", "not (exists x (moving(x)) until exists y (armed(y)))", false,
       false},
      // Merge-heavy: deep closed temporal chains, the VM's home turf. All
      // subtrees inside one formula are distinct, so the compiler's
      // common-sub-plan sharing never skips a kernel and the speedup
      // measures the arena merge pipeline itself.
      {"merge_until_chain",
       "(((exists x (moving(x)) until exists y (armed(y))) until "
       "eventually (exists p (present(p)))) until "
       "((exists y (armed(y)) until exists x (moving(x))) or "
       "next (exists p (present(p))))) until "
       "((duration >= 30 until exists x (moving(x))) or "
       "eventually (exists q (type(q) = 'train')))",
       true, false},
      {"merge_mixed_chain",
       "eventually ((((exists x (moving(x)) or exists y (armed(y))) until "
       "next (exists p (present(p)))) until "
       "(exists x (moving(x)) until eventually (exists y (armed(y))))) until "
       "((exists p (present(p)) or duration >= 30) until "
       "(exists q (type(q) = 'train') until exists x (moving(x)))))",
       true, false},
      {"merge_join_pair",
       "(((exists x (moving(x)) until exists y (armed(y))) and "
       "(exists p (present(p)) until exists x (moving(x)))) until "
       "((exists y (armed(y)) or exists p (present(p))) until "
       "next (exists x (moving(x))))) until "
       "(((duration >= 30 or exists q (type(q) = 'train')) until "
       "exists y (armed(y))) and eventually (next (exists p (present(p)))))",
       true, false},
  };

  constexpr int kReps = 40;
  constexpr int kRounds = 8;

  std::printf("interpreter vs bytecode VM (best of %d rounds, %d reps each)\n",
              kRounds, kReps);
  std::printf("%-20s %-14s %-14s %s\n", "case", "interpret ms", "vm ms",
              "speedup");

  double interp_merge_total = 0, vm_merge_total = 0;
  int merge_arms = 0;
  bool failed = false;

  for (const Case& c : cases) {
    const VideoTree& v = c.needs_levels ? video3 : video;
    const int level = c.needs_levels ? 2 : v.num_levels();

    auto parsed = ParseFormula(c.text);
    HTL_CHECK(parsed.ok()) << parsed.status().ToString();
    FormulaPtr f = std::move(parsed).value();
    HTL_CHECK(Bind(f.get()).ok());

    QueryOptions interp_opts;
    interp_opts.engine_mode = EngineMode::kInterpret;
    QueryOptions vm_opts;
    vm_opts.engine_mode = EngineMode::kVm;
    DirectEngine interp(&v, interp_opts);
    DirectEngine vm(&v, vm_opts);

    // Correctness before speed: the two arms must agree bit for bit (this
    // also warms the per-engine atomic caches, so the timed loops measure
    // the merge pipeline, not picture queries).
    auto a = interp.EvaluateList(level, *f);
    auto b = vm.EvaluateList(level, *f);
    HTL_CHECK(a.ok()) << a.status().ToString() << " case " << c.label;
    HTL_CHECK(b.ok()) << b.status().ToString() << " case " << c.label;
    if (!(a.value() == b.value())) {
      std::printf("FAIL: %s diverges between interpreter and VM\n", c.label);
      return 1;
    }

    auto time_arm = [&](DirectEngine& engine) -> double {
      WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        auto result = engine.EvaluateList(level, *f);
        HTL_CHECK(result.ok()) << result.status().ToString();
      }
      return 1e3 * timer.ElapsedSeconds() / kReps;
    };

    double interp_ms = 1e99, vm_ms = 1e99;
    for (int round = 0; round < kRounds; ++round) {
      interp_ms = std::min(interp_ms, time_arm(interp));
      vm_ms = std::min(vm_ms, time_arm(vm));
    }

    const double speedup = vm_ms > 0 ? interp_ms / vm_ms : 0.0;
    std::printf("%-20s %-14.4f %-14.4f %.2fx%s\n", c.label, interp_ms, vm_ms,
                speedup, c.merge_heavy ? "  [merge-heavy]" : "");
    json.Add(c.label, {{"interp_ms", interp_ms},
                       {"vm_ms", vm_ms},
                       {"speedup", speedup},
                       {"merge_heavy", c.merge_heavy ? 1.0 : 0.0}});
    if (c.merge_heavy) {
      interp_merge_total += interp_ms;
      vm_merge_total += vm_ms;
      ++merge_arms;
    }
  }

  // Dispatch probe: an EvaluateList call that fails argument validation
  // does the mode switch, the per-mode call and a Status round-trip but no
  // evaluation — an upper bound on what engine_mode costs per query.
  QueryOptions interp_opts;
  interp_opts.engine_mode = EngineMode::kInterpret;
  DirectEngine probe_engine(&video, interp_opts);
  {
    auto parsed = ParseFormula("exists x (moving(x))");
    HTL_CHECK(parsed.ok());
    FormulaPtr probe_f = std::move(parsed).value();
    HTL_CHECK(Bind(probe_f.get()).ok());
    constexpr int kProbeReps = 20000;
    double probe_ms = 1e99;
    for (int round = 0; round < kRounds; ++round) {
      WallTimer timer;
      for (int r = 0; r < kProbeReps; ++r) {
        auto result = probe_engine.EvaluateList(/*level=*/99, *probe_f);
        HTL_CHECK(!result.ok());
      }
      probe_ms = std::min(probe_ms, 1e3 * timer.ElapsedSeconds() / kProbeReps);
    }

    const double mean_interp_ms = interp_merge_total / merge_arms;
    const double dispatch_overhead =
        mean_interp_ms > 0 ? probe_ms / mean_interp_ms : 0.0;
    const double merge_speedup =
        vm_merge_total > 0 ? interp_merge_total / vm_merge_total : 0.0;
    json.Add("aggregate", {{"merge_interp_ms", interp_merge_total},
                           {"merge_vm_ms", vm_merge_total},
                           {"merge_speedup", merge_speedup},
                           {"dispatch_probe_ms", probe_ms},
                           {"mean_interp_ms", mean_interp_ms},
                           {"dispatch_overhead", dispatch_overhead},
                           {"speedup_limit", speedup_limit},
                           {"overhead_limit", overhead_limit}});
    std::printf(
        "\nmerge-heavy aggregate: interpreter %.3f ms, VM %.3f ms -> %.2fx "
        "(gate >= %.2fx)\n",
        interp_merge_total, vm_merge_total, merge_speedup, speedup_limit);
    std::printf(
        "engine_mode dispatch probe: %.6f ms/call = %.3f%% of a mean "
        "merge-heavy interpreted query (gate < %.0f%%)\n",
        probe_ms, 1e2 * dispatch_overhead, 1e2 * overhead_limit);

    if (merge_speedup < speedup_limit) {
      std::printf("FAIL: VM speedup %.2fx below the %.2fx gate\n", merge_speedup,
                  speedup_limit);
      failed = true;
    }
    if (dispatch_overhead > overhead_limit) {
      std::printf("FAIL: dispatch overhead %.3f%% exceeds the %.0f%% gate\n",
                  1e2 * dispatch_overhead, 1e2 * overhead_limit);
      failed = true;
    }
  }

  if (failed) return 1;
  std::printf("PASS: VM speedup and interpret-mode dispatch overhead within "
              "limits\n");
  return 0;
}
