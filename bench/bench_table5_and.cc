// Table 5 of the paper: performance of the two systems on the basic
// conjunction  P1 AND P2  over randomly generated similarity tables of
// 10'000 / 50'000 / 100'000 shots (about one tenth satisfying each atomic
// predicate). The paper's own numbers for Table 5 are not legible in the
// available scan ("n/l"); the shape to reproduce is direct << SQL with
// linear growth of the direct method (the legible Table 6 confirms the
// magnitudes on the same setup).

#include "htl/ast.h"
#include "perf_common.h"

int main() {
  using namespace htl;
  FormulaPtr f = MakeAnd(MakePredicate("p1", {}), MakePredicate("p2", {}));
  bench::BenchJson json("table5_and");
  return bench::RunPerfTable(
      "Table 5. Perf Results for P1 AND P2", *f, {"p1", "p2"},
      {
          {10'000, "n/l", "n/l"},
          {50'000, "n/l", "n/l"},
          {100'000, "n/l", "n/l"},
      },
      /*reps=*/5, &json);
}
