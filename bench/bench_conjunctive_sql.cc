// Ablation extending the §4 comparison to the *conjunctive* class: the
// paper's formula (C) (freeze quantifier over airplane altitude) evaluated
// by the direct engine vs the SQL translation with relational value-table
// joins, as the clip length grows.

#include <cstdio>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "picture/atomic.h"
#include "picture/picture_system.h"
#include "sql/sql_system.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using namespace htl;

// A flat video with `planes` airplanes drifting in altitude across n shots.
VideoTree MakeVideo(int64_t n, int planes, uint64_t seed) {
  Rng rng(seed);
  VideoTree v = VideoTree::Flat(n);
  for (int p = 1; p <= planes; ++p) {
    int64_t height = rng.UniformInt(100, 900);
    // Each plane appears in a contiguous window ~n/2 long.
    const int64_t start = rng.UniformInt(1, std::max<int64_t>(1, n / 2));
    const int64_t end = std::min<int64_t>(n, start + n / 2);
    for (SegmentId s = start; s <= end; ++s) {
      height = std::max<int64_t>(50, height + rng.UniformInt(-60, 80));
      v.MutableMeta(2, s).AddObject(
          {p, {{"type", AttrValue("airplane")}, {"height", AttrValue(height)}}});
    }
  }
  return v;
}

}  // namespace

int main() {
  std::printf("Formula (C) — direct engine vs conjunctive SQL translation\n");
  std::printf("%-8s %-8s %-14s %-14s %-10s %s\n", "shots", "planes", "direct (s)",
              "SQL (s)", "SQL/Dir", "identical");
  const char* real_text =
      "exists z (present(z) and type(z) = 'airplane' and "
      "[h <- height(z)] eventually (present(z) and height(z) > h))";
  const char* skeleton_text = "exists z (q1(z) and [h <- height(z)] eventually q2(z))";

  for (int64_t n : {200, 400, 800}) {
    VideoTree v = MakeVideo(n, 4, 42);
    PictureSystem pictures(&v);

    // Inputs for the SQL path (not timed — the paper times statement
    // execution only).
    auto q1_parsed = ParseFormula("present(z) and type(z) = 'airplane'");
    auto q1_atomic = ExtractAtomic(*q1_parsed.value()).value();
    AtomicFormula q2_atomic;
    {
      Constraint present;
      present.kind = Constraint::Kind::kPresent;
      present.object_var = "z";
      Constraint higher;
      higher.kind = Constraint::Kind::kCompare;
      higher.lhs = AttrTerm::AttrOf("height", "z");
      higher.op = CompareOp::kGt;
      higher.rhs = AttrTerm::Variable("h");
      q2_atomic.constraints = {present, higher};
    }
    std::map<std::string, sql::SqlSystem::TableInput> preds;
    preds["q1"] = {pictures.Query(2, q1_atomic).value(), q1_atomic.MaxWeight()};
    preds["q2"] = {pictures.Query(2, q2_atomic).value(), q2_atomic.MaxWeight()};
    std::map<std::string, ValueTable> values;
    values["height(z)"] = pictures.Values(2, AttrTerm::AttrOf("height", "z")).value();

    auto real = ParseFormula(real_text);
    if (!Bind(real.value().get()).ok()) return 1;
    DirectEngine engine(&v);
    WallTimer direct_timer;
    auto direct = engine.EvaluateList(2, *real.value());
    const double direct_s = direct_timer.ElapsedSeconds();
    if (!direct.ok()) {
      std::printf("direct error: %s\n", direct.status().ToString().c_str());
      return 1;
    }

    auto skeleton = ParseFormula(skeleton_text);
    sql::SqlSystem sys;
    WallTimer sql_timer;
    auto via_sql = sys.EvaluateConjunctive(*skeleton.value(), preds, values, n);
    const double sql_s = sql_timer.ElapsedSeconds();
    if (!via_sql.ok()) {
      std::printf("sql error: %s\n", via_sql.status().ToString().c_str());
      return 1;
    }
    std::printf("%-8lld %-8d %-14.6f %-14.4f %-10.0f %s\n",
                static_cast<long long>(n), 4, direct_s, sql_s, sql_s / direct_s,
                via_sql.value() == direct.value() ? "yes" : "NO");
  }
  std::printf(
      "\n(the direct timing here includes the picture queries the SQL side gets\n"
      "for free, so the ratio understates the SQL overhead)\n");
  return 0;
}
