// Measures the result/sub-formula cache of src/cache: what a warm hit
// saves, what a cold miss costs, and what cache_mode=off pays for the cache
// code now being on the retrieval path. Arms, per query:
//
//   handroll   per-video EvaluateList + TopKSegments + global rank on a
//              cache-off retriever — the hand-rolled retrieval loop with no
//              result-cache wrapper at all (the pre-cache code shape);
//   off        TopSegmentsWithReport with cache_mode=kOff — the default
//              configuration every existing caller runs;
//   miss       cache_mode=kReadWrite with the caches cleared before every
//              query — lookup miss + recompute + fill (the worst case);
//   warm       cache_mode=kReadWrite, warmed once — every query a hit.
//
// Gates (binary exits non-zero on failure, so CI runs it directly):
//   * warm speedup: off / warm >= 5x   (HTL_CACHE_SPEEDUP_MIN overrides)
//   * off overhead: off vs handroll < 2% (HTL_CACHE_OFF_LIMIT overrides)
// Per-arm times are best-of-rounds, arms interleaved per round, to fight
// scheduler noise. The off-overhead gate is stricter still: handroll and
// off alternate per *rep*, and the gate takes the median of the per-rep
// off/handroll ratios. Adjacent reps are microseconds apart, so frequency
// drift, a throttled window, or a preemption slows both halves of a pair
// alike and cancels in the ratio, where it would skew independently-timed
// blocks; the median then discards the pairs a preemption split anyway.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "engine/query_cache.h"
#include "engine/retrieval.h"
#include "perf_common.h"
#include "sim/topk.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/video_gen.h"

int main() {
  using namespace htl;

  double speedup_min = 5.0;
  if (const char* env = std::getenv("HTL_CACHE_SPEEDUP_MIN"); env != nullptr) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0) speedup_min = parsed;
  }
  double off_limit = 0.02;
  if (const char* env = std::getenv("HTL_CACHE_OFF_LIMIT"); env != nullptr) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0) off_limit = parsed;
  }

  bench::BenchJson json("cache");
  MetadataStore store;
  Rng rng(20260806);
  VideoGenOptions opts;
  opts.levels = 2;
  opts.min_branching = 30;
  opts.max_branching = 50;
  for (int i = 0; i < 16; ++i) store.AddVideo(GenerateVideo(rng, opts));

  QueryOptions off_options;  // cache_mode defaults to kOff.
  Retriever r_off(&store, off_options);
  QueryOptions rw_options;
  rw_options.cache_mode = CacheMode::kReadWrite;
  Retriever r_miss(&store, rw_options);
  Retriever r_warm(&store, rw_options);

  const char* queries[] = {
      "exists x (type(x) = 'person') until exists y (type(y) = 'train')",
      "exists x (present(x) and moving(x) and eventually armed(x))",
      "exists z (present(z) and [h <- height(z)] eventually (height(z) > h))",
  };

  constexpr int64_t kTopK = 10;
  constexpr int kReps = 20;
  constexpr int kRounds = 25;
  double total_handroll = 0, total_off = 0, total_miss = 0, total_warm = 0;
  // One off/handroll ratio per (query, round, rep) pair, for the paired gate.
  std::vector<double> off_ratios;

  std::printf("result/sub-formula cache (16 videos, best of %d rounds)\n", kRounds);
  std::printf("%-56s %-12s %-12s %-12s %-12s %s\n", "query", "handroll ms",
              "off ms", "miss ms", "warm ms", "off ovh");

  for (const char* q : queries) {
    auto prepared = r_off.Prepare(q);
    if (!prepared.ok()) {
      std::printf("query error: %s\n", prepared.status().ToString().c_str());
      return 1;
    }
    const Formula& f = *prepared.value();

    // Warm-up: pays each retriever's per-video atomic indexing once, and
    // leaves r_warm's result cache holding this query.
    for (Retriever* r : {&r_off, &r_miss, &r_warm}) {
      auto warm = r->TopSegmentsWithReport(f, 2, kTopK);
      HTL_CHECK(warm.ok()) << warm.status().ToString();
      HTL_CHECK(warm.value().report.complete());
    }

    // The pre-cache body of TopSegmentsWithReport, hand-inlined: per-video
    // list evaluation with report bookkeeping, per-video top-k, then the
    // global fractional-similarity ranking — everything the entry point did
    // before the cache dispatch existed, with no cache wrapper on the path.
    // Returns seconds for a single rep.
    auto one_handroll = [&]() -> double {
      WallTimer timer;
      SegmentRetrieval out;
      for (MetadataStore::VideoId v = 1; v <= store.num_videos(); ++v) {
        bool degraded = false;
        auto list = r_off.EvaluateList(v, 2, f, nullptr, &degraded);
        if (!list.ok()) {
          ++out.report.videos_failed;
          out.report.failures.push_back(
              RetrievalReport::VideoFailure{v, list.status()});
          continue;
        }
        ++out.report.videos_evaluated;
        if (degraded) ++out.report.videos_degraded;
        for (const RankedSegment& s : TopKSegments(list.value(), kTopK)) {
          out.hits.push_back(SegmentHit{v, s.id, s.sim});
        }
      }
      std::stable_sort(out.hits.begin(), out.hits.end(),
                       [](const SegmentHit& a, const SegmentHit& b) {
                         return a.sim.fraction() > b.sim.fraction();
                       });
      if (out.hits.size() > static_cast<size_t>(kTopK)) out.hits.resize(kTopK);
      HTL_CHECK(!out.hits.empty());
      HTL_CHECK(out.report.complete());
      return timer.ElapsedSeconds();
    };

    auto one_retriever = [&](Retriever& r, bool clear_first) -> double {
      if (clear_first) r.caches()->Clear();
      WallTimer timer;
      auto result = r.TopSegmentsWithReport(f, 2, kTopK);
      HTL_CHECK(result.ok()) << result.status().ToString();
      return timer.ElapsedSeconds();
    };

    double handroll_ms = 1e99, off_ms = 1e99, miss_ms = 1e99, warm_ms = 1e99;
    std::vector<double> query_ratios;
    for (int round = 0; round < kRounds; ++round) {
      double h_sum = 0, o_sum = 0, m_sum = 0, w_sum = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        // Alternate which arm of the pair runs first: whatever the previous
        // rep leaves behind (allocator state, predictors, cache residency)
        // lands on each arm equally often and cancels in the median ratio.
        double h, o;
        if (rep % 2 == 0) {
          h = one_handroll();
          o = one_retriever(r_off, false);
        } else {
          o = one_retriever(r_off, false);
          h = one_handroll();
        }
        h_sum += h;
        o_sum += o;
        if (h > 0) query_ratios.push_back(o / h);
        m_sum += one_retriever(r_miss, true);
        w_sum += one_retriever(r_warm, false);
      }
      handroll_ms = std::min(handroll_ms, 1e3 * h_sum / kReps);
      off_ms = std::min(off_ms, 1e3 * o_sum / kReps);
      miss_ms = std::min(miss_ms, 1e3 * m_sum / kReps);
      warm_ms = std::min(warm_ms, 1e3 * w_sum / kReps);
    }
    std::nth_element(query_ratios.begin(),
                     query_ratios.begin() + static_cast<long>(query_ratios.size() / 2),
                     query_ratios.end());
    const double query_off_overhead = query_ratios[query_ratios.size() / 2] - 1.0;
    off_ratios.insert(off_ratios.end(), query_ratios.begin(), query_ratios.end());

    total_handroll += handroll_ms;
    total_off += off_ms;
    total_miss += miss_ms;
    total_warm += warm_ms;
    std::printf("%-56s %-12.3f %-12.3f %-12.3f %-12.4f %+.2f%%\n", q, handroll_ms,
                off_ms, miss_ms, warm_ms, 1e2 * query_off_overhead);
    json.Add(q, {{"handroll_ms", handroll_ms},
                 {"off_ms", off_ms},
                 {"miss_ms", miss_ms},
                 {"warm_ms", warm_ms},
                 {"off_overhead", query_off_overhead},
                 {"warm_speedup", warm_ms > 0 ? off_ms / warm_ms : 0.0}});
  }

  const double speedup = total_warm > 0 ? total_off / total_warm : 0.0;
  // Median of the paired per-round ratios: robust to throttled windows that
  // a min over independently-timed blocks would attribute to one arm only.
  HTL_CHECK(!off_ratios.empty());
  std::nth_element(off_ratios.begin(),
                   off_ratios.begin() + static_cast<long>(off_ratios.size() / 2),
                   off_ratios.end());
  const double off_overhead = off_ratios[off_ratios.size() / 2] - 1.0;
  const double miss_overhead =
      total_off > 0 ? total_miss / total_off - 1.0 : 0.0;
  const cache::CacheStats warm_stats = r_warm.caches()->result_stats();
  json.Add("aggregate", {{"handroll_ms", total_handroll},
                         {"off_ms", total_off},
                         {"miss_ms", total_miss},
                         {"warm_ms", total_warm},
                         {"warm_speedup", speedup},
                         {"off_overhead", off_overhead},
                         {"miss_overhead", miss_overhead},
                         {"warm_hits", static_cast<double>(warm_stats.hits)},
                         {"speedup_min", speedup_min},
                         {"off_limit", off_limit}});
  std::printf(
      "\naggregate: warm hit %.1fx faster than cache-off (gate >= %.0fx);\n"
      "cache_mode=off %+.2f%% vs hand-rolled loop (paired-round median, "
      "limit %.0f%%); miss %+.2f%% vs off (informational)\n",
      speedup, speedup_min, 1e2 * off_overhead, 1e2 * off_limit,
      1e2 * miss_overhead);

  bool ok = true;
  if (speedup < speedup_min) {
    std::printf("FAIL: warm-hit speedup %.1fx below the %.0fx gate\n", speedup,
                speedup_min);
    ok = false;
  }
  if (off_overhead > off_limit) {
    std::printf("FAIL: cache_mode=off overhead %.2f%% exceeds limit %.0f%%\n",
                1e2 * off_overhead, 1e2 * off_limit);
    ok = false;
  }
  if (ok) std::printf("PASS: cache gates met\n");
  return ok ? 0 : 1;
}
