// Ablation for the analyzer substrate (figure 1's "Video Analyzer"):
// throughput of cut detection, key-frame selection, tracking, and the whole
// frames-to-hierarchy pipeline on synthetic footage.

#include <benchmark/benchmark.h>

#include "analyzer/pipeline.h"
#include "util/rng.h"
#include "workload/footage_gen.h"

namespace htl {
namespace {

Footage MakeFootage(int64_t scenes, uint64_t seed) {
  Rng rng(seed);
  FootageOptions opts;
  opts.num_scenes = scenes;
  opts.min_scene_frames = 8;
  opts.max_scene_frames = 16;
  opts.min_objects = 2;
  opts.max_objects = 4;
  return GenerateFootage(rng, opts);
}

void BM_DetectCuts(benchmark::State& state) {
  Footage footage = MakeFootage(state.range(0), 1);
  std::vector<FrameFeatures> features;
  for (const RawFrame& f : footage.frames) features.push_back(f.features);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DetectCuts(features));
  }
  state.counters["frames"] = static_cast<double>(features.size());
}
BENCHMARK(BM_DetectCuts)->Arg(16)->Arg(64)->Arg(256);

void BM_TrackObjects(benchmark::State& state) {
  Footage footage = MakeFootage(state.range(0), 2);
  std::vector<std::vector<Detection>> detections;
  for (const RawFrame& f : footage.frames) detections.push_back(f.detections);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TrackObjects(detections));
  }
  state.counters["frames"] = static_cast<double>(detections.size());
}
BENCHMARK(BM_TrackObjects)->Arg(16)->Arg(64)->Arg(256);

void BM_AnalyzeVideo(benchmark::State& state) {
  Footage footage = MakeFootage(state.range(0), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnalyzeVideo(footage.frames));
  }
  state.counters["frames"] = static_cast<double>(footage.frames.size());
}
BENCHMARK(BM_AnalyzeVideo)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace htl

BENCHMARK_MAIN();
