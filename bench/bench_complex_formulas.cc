// Section 4.2's omitted experiment: "In addition to the two basic formulas,
// we also analyzed the performance of the two approaches on two other more
// complex formulas. The results for these more complex cases are consistent
// with those for the simpler formulas and are left out due to lack of
// space." We pick two natural compositions over three atomic predicates and
// report the same Size / Direct / SQL table shape.

#include "htl/ast.h"
#include "perf_common.h"

int main() {
  using namespace htl;
  int rc = 0;
  bench::BenchJson json("complex_formulas");
  {
    // (P1 AND P2) UNTIL P3 — a conjunction chained into until.
    FormulaPtr f = MakeUntil(MakeAnd(MakePredicate("p1", {}), MakePredicate("p2", {})),
                             MakePredicate("p3", {}));
    rc |= bench::RunPerfTable(
        "Complex formula 1: (P1 AND P2) UNTIL P3", *f, {"p1", "p2", "p3"},
        {
            {10'000, "n/a", "n/a"},
            {50'000, "n/a", "n/a"},
            {100'000, "n/a", "n/a"},
        },
        /*reps=*/5, &json);
  }
  {
    // P1 AND NEXT (P2 UNTIL P3) — the paper's formula (A) shape.
    FormulaPtr f =
        MakeAnd(MakePredicate("p1", {}),
                MakeNext(MakeUntil(MakePredicate("p2", {}), MakePredicate("p3", {}))));
    rc |= bench::RunPerfTable(
        "Complex formula 2: P1 AND NEXT (P2 UNTIL P3)", *f, {"p1", "p2", "p3"},
        {
            {10'000, "n/a", "n/a"},
            {50'000, "n/a", "n/a"},
            {100'000, "n/a", "n/a"},
        },
        /*reps=*/5, &json);
  }
  return rc;
}
