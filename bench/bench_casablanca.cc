// Tables 1-4 of the paper (section 4.1): the Casablanca test case, end to
// end — picture retrieval system -> atomic similarity tables -> Query 1
// evaluated by both the direct method and the SQL-based method. Verifies
// the exact published values and reports both systems' runtimes.

#include <cmath>
#include <cstdio>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "picture/picture_system.h"
#include "sim/topk.h"
#include "sql/sql_system.h"
#include "util/timer.h"
#include "workload/casablanca.h"

namespace {

void PrintTable(const char* title, const htl::SimilarityList& list,
                const htl::SimilarityList& expected) {
  std::printf("%s\n", title);
  std::printf("  %-9s %-7s %s\n", "Start-id", "End-id", "Similarity-value");
  for (const htl::RankedEntry& row : htl::RankedEntries(list)) {
    std::printf("  %-9lld %-7lld %.6f\n", static_cast<long long>(row.entry.range.begin),
                static_cast<long long>(row.entry.range.end), row.entry.actual);
  }
  bool ok = list.length() == expected.length();
  for (const htl::SimEntry& e : expected.entries()) {
    ok = ok && std::abs(list.ActualAt(e.range.begin) - e.actual) < 1e-9;
  }
  std::printf("  -> matches the paper: %s\n\n", ok ? "yes" : "NO");
}

}  // namespace

int main() {
  using namespace htl;

  VideoTree video = casablanca::MakeVideo();
  std::printf("=== Section 4.1: %s, %lld shots ===\n\n", video.Title().c_str(),
              static_cast<long long>(video.NumSegments(2)));

  PictureSystem pictures(&video);
  AtomicFormula mt = ExtractAtomic(*casablanca::MovingTrainAtomic()).value();
  AtomicFormula mw = ExtractAtomic(*casablanca::ManWomanAtomic()).value();
  SimilarityList t1 = pictures.QueryClosed(2, mt).value();
  SimilarityList t2 = pictures.QueryClosed(2, mw).value();
  PrintTable("Table 1. Moving-Train", t1, casablanca::MovingTrainTable());
  PrintTable("Table 2. Man-Woman", t2, casablanca::ManWomanTable());

  DirectEngine engine(&video);
  FormulaPtr ev = MakeEventually(casablanca::MovingTrainAtomic());
  (void)Bind(ev.get());
  PrintTable("Table 3. Result of eventually operation in Query 1",
             engine.EvaluateList(2, *ev).value(),
             casablanca::EventuallyMovingTrainTable());

  // Direct method, timed over the list inputs (as in section 4.2's setup).
  FormulaPtr named = casablanca::Query1Named();
  WallTimer direct_timer;
  SimilarityList direct_result =
      EvaluateWithLists(*named, {{"man_woman", t2}, {"moving_train", t1}}).value();
  const double direct_us = static_cast<double>(direct_timer.ElapsedMicros());
  PrintTable("Table 4. Final result of Query 1 (direct method)", direct_result,
             casablanca::Query1ResultTable());

  // SQL-based method.
  sql::SqlSystem sys;
  auto translation =
      sql::TranslateToSql(*named, {{"man_woman", t2.max()}, {"moving_train", t1.max()}},
                          "q")
          .value();
  (void)sys.LoadInputs(translation, {{"man_woman", t2}, {"moving_train", t1}},
                       casablanca::kNumShots);
  WallTimer sql_timer;
  SimilarityList sql_result = sys.Run(translation).value();
  const double sql_us = static_cast<double>(sql_timer.ElapsedMicros());

  std::printf("direct method:    %8.0f us\n", direct_us);
  std::printf("SQL-based method: %8.0f us (%zu SQL statements)\n", sql_us,
              translation.statements.size());
  std::printf("identical results from both systems: %s\n",
              direct_result == sql_result ? "yes" : "NO");
  return direct_result == sql_result ? 0 : 1;
}
