// Shared harness for the Tables 5/6 performance comparison (section 4.2):
// the direct algorithms vs the SQL-based approach on randomly generated
// similarity lists where roughly one tenth of the shots satisfy each atomic
// predicate.
//
// Timing methodology follows the paper:
//   * direct: "the time required to read the similarity tables ..., the
//     time required to sort the tables on the start ids and the running
//     time of the algorithm" — we deserialize from shuffled entry arrays
//     (the in-memory stand-in for a secondary-storage read), sort, and run;
//   * SQL: "the time for executing the sequence of SQL queries" — loading
//     the input relations and translating are not timed.

#ifndef HTL_BENCH_PERF_COMMON_H_
#define HTL_BENCH_PERF_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "engine/direct_engine.h"
#include "engine/exec_context.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/sql_system.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/random_lists.h"

namespace htl::bench {

/// Machine-readable benchmark output: each bench binary owns one BenchJson
/// and writes BENCH_<name>.json (cwd) with a flat list of labeled metric
/// records, so CI and regression tooling can diff runs without scraping the
/// human-readable tables.
class BenchJson {
 public:
  explicit BenchJson(std::string name) : name_(std::move(name)) {}
  ~BenchJson() { Flush(); }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void Add(std::string label,
           std::initializer_list<std::pair<const char*, double>> metrics) {
    Record rec;
    rec.label = std::move(label);
    for (const auto& [key, value] : metrics) rec.metrics.emplace_back(key, value);
    records_.push_back(std::move(rec));
  }

  /// Writes BENCH_<name>.json; called automatically on destruction.
  void Flush() {
    if (flushed_) return;
    flushed_ = true;
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [", Escaped(name_).c_str());
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fprintf(f, "%s\n    {\"label\": \"%s\"", i == 0 ? "" : ",",
                   Escaped(records_[i].label).c_str());
      for (const auto& [key, value] : records_[i].metrics) {
        std::fprintf(f, ", \"%s\": %.9g", Escaped(key).c_str(), value);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "\n  ]");
    if (obs::MetricsRegistry::Enabled()) {
      // Process-wide counter snapshot (ToJson emits a complete JSON object),
      // so a bench run records which kernels it actually exercised.
      std::fprintf(f, ",\n  \"metrics\": %s",
                   obs::MetricsRegistry::Instance().Snapshot().ToJson().c_str());
    }
    std::fprintf(f, "\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

 private:
  struct Record {
    std::string label;
    std::vector<std::pair<std::string, double>> metrics;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string name_;
  std::vector<Record> records_;
  bool flushed_ = false;
};

struct PerfInputs {
  std::map<std::string, SimilarityList> lists;
  // Shuffled raw entries per predicate (the "unsorted storage image").
  std::map<std::string, std::vector<SimEntry>> shuffled;
  std::map<std::string, double> maxes;
};

inline PerfInputs MakeInputs(int64_t size, uint64_t seed,
                             const std::vector<std::string>& preds) {
  PerfInputs out;
  Rng rng(seed);
  RandomListOptions opts;
  opts.num_segments = size;
  opts.coverage = 0.1;  // "approximately one tenth of these shots satisfy".
  for (const std::string& p : preds) {
    SimilarityList list = GenerateRandomList(rng, opts);
    out.maxes[p] = list.max();
    std::vector<SimEntry> entries = list.entries();
    // Deterministic shuffle.
    for (size_t i = entries.size(); i > 1; --i) {
      std::swap(entries[i - 1],
                entries[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1))]);
    }
    out.shuffled[p] = std::move(entries);
    out.lists[p] = std::move(list);
  }
  return out;
}

// One timed direct evaluation: sort the shuffled entries + run the list
// algorithms. Returns seconds; the result list is written to *result.
inline double TimeDirect(const Formula& f, const PerfInputs& inputs,
                         SimilarityList* result) {
  WallTimer timer;
  std::map<std::string, SimilarityList> sorted;
  for (const auto& [name, entries] : inputs.shuffled) {
    std::vector<SimEntry> copy = entries;
    std::sort(copy.begin(), copy.end(), [](const SimEntry& a, const SimEntry& b) {
      return a.range.begin < b.range.begin;
    });
    Result<SimilarityList> list =
        SimilarityList::FromEntries(std::move(copy), inputs.maxes.at(name));
    HTL_CHECK(list.ok()) << list.status().ToString();
    sorted.emplace(name, std::move(list).value());
  }
  Result<SimilarityList> r = EvaluateWithLists(f, sorted);
  HTL_CHECK(r.ok()) << r.status().ToString();
  *result = std::move(r).value();
  return timer.ElapsedSeconds();
}

// One timed SQL evaluation (statements only). Returns seconds.
inline double TimeSql(const Formula& f, const PerfInputs& inputs, int64_t size,
                      SimilarityList* result) {
  sql::SqlSystem sys;
  Result<sql::Translation> tr = sql::TranslateToSql(f, inputs.maxes, "q");
  HTL_CHECK(tr.ok()) << tr.status().ToString();
  Status loaded = sys.LoadInputs(tr.value(), inputs.lists, size);
  HTL_CHECK(loaded.ok()) << loaded.ToString();
  WallTimer timer;
  Result<SimilarityList> r = sys.Run(tr.value());
  const double s = timer.ElapsedSeconds();
  HTL_CHECK(r.ok()) << r.status().ToString();
  *result = std::move(r).value();
  return s;
}

struct PaperRow {
  int64_t size;
  const char* direct;  // Paper-reported seconds (or "n/l" when the scan of
  const char* sql;     // the paper is not legible for that cell).
};

// Runs one table: sizes x {direct (best of `reps`), SQL (once)}, verifying
// that both systems produce identical lists. When `json` is non-null, each
// row is also recorded as a machine-readable metric record.
// Untimed EXPLAIN pass: one profiled evaluation per system at `size`,
// printing where the time goes (per-operator spans on the direct path,
// per-statement/join spans on the SQL path).
inline void PrintProfiles(const char* title, const Formula& f,
                          const PerfInputs& inputs, int64_t size) {
  {
    obs::QueryTrace trace;
    Result<SimilarityList> r = EvaluateWithLists(f, inputs.lists, {}, &trace);
    HTL_CHECK(r.ok()) << r.status().ToString();
    std::printf("%s / size %lld: direct profile\n%s", title,
                static_cast<long long>(size), trace.Finish().ToText().c_str());
  }
  {
    sql::SqlSystem sys;
    Result<sql::Translation> tr = sql::TranslateToSql(f, inputs.maxes, "q");
    HTL_CHECK(tr.ok()) << tr.status().ToString();
    Status loaded = sys.LoadInputs(tr.value(), inputs.lists, size);
    HTL_CHECK(loaded.ok()) << loaded.ToString();
    ExecContext ctx;
    obs::QueryTrace trace;
    ctx.set_trace(&trace);
    sys.executor().set_exec_context(&ctx);
    Result<SimilarityList> r = sys.Run(tr.value());
    sys.executor().set_exec_context(nullptr);
    HTL_CHECK(r.ok()) << r.status().ToString();
    std::printf("%s / size %lld: SQL profile\n%s\n", title,
                static_cast<long long>(size), trace.Finish().ToText().c_str());
  }
}

inline int RunPerfTable(const char* title, const Formula& f,
                        const std::vector<std::string>& preds,
                        const std::vector<PaperRow>& rows, int reps = 5,
                        BenchJson* json = nullptr) {
  // Process-wide counters stay on for the whole bench; BenchJson::Flush
  // embeds the final snapshot into BENCH_<name>.json. The timed arms below
  // carry no trace, so span instrumentation stays on its disarmed path.
  obs::MetricsRegistry::Instance().SetEnabled(true);
  std::printf("%s\n", title);
  std::printf("%-10s %-16s %-16s %-10s %-14s %s\n", "Size", "Direct (s)",
              "SQL-based (s)", "SQL/Dir", "Paper Direct", "Paper SQL");
  bool all_match = true;
  for (const PaperRow& row : rows) {
    PerfInputs inputs = MakeInputs(row.size, 0xC0FFEE + static_cast<uint64_t>(row.size),
                                   preds);
    SimilarityList direct_result, sql_result;
    double best_direct = 1e99;
    for (int i = 0; i < reps; ++i) {
      best_direct = std::min(best_direct, TimeDirect(f, inputs, &direct_result));
    }
    const double sql_s = TimeSql(f, inputs, row.size, &sql_result);
    const bool match = direct_result == sql_result;
    all_match = all_match && match;
    std::printf("%-10lld %-16.6f %-16.4f %-10.0f %-14s %s%s\n",
                static_cast<long long>(row.size), best_direct, sql_s,
                sql_s / best_direct, row.direct, row.sql,
                match ? "" : "   RESULTS DIFFER!");
    if (json != nullptr) {
      json->Add(StrCat(title, " / size ", row.size),
                {{"size", static_cast<double>(row.size)},
                 {"direct_s", best_direct},
                 {"sql_s", sql_s},
                 {"results_match", match ? 1.0 : 0.0}});
    }
  }
  std::printf(
      "\nshape check: the direct method is orders of magnitude faster and grows\n"
      "linearly with size, as in the paper; absolute values differ (2026 CPU and\n"
      "an in-memory SQL engine vs 1997 SPARC + Sybase).\n\n");
  if (!rows.empty()) {
    const int64_t size = rows.front().size;
    PerfInputs inputs = MakeInputs(size, 0xC0FFEE + static_cast<uint64_t>(size), preds);
    PrintProfiles(title, f, inputs, size);
  }
  return all_match ? 0 : 1;
}

}  // namespace htl::bench

#endif  // HTL_BENCH_PERF_COMMON_H_
