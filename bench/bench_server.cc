// Load harness for the query service: measures baseline capacity, then
// drives a 10x-capacity overload phase and a drain-under-load phase,
// gating on the robustness contract — under any load the server answers
// every connection with a well-formed response (complete, degraded
// partial, or an explicit Overloaded refusal) or a clean transport error,
// never a hang, torn frame, or crash.
//
// Emits BENCH_server.json: throughput, p50/p99 latency, and the
// ok/shed/reject fractions per phase. Exits non-zero when a gate fails,
// so CI treats robustness regressions like correctness failures.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "model/video.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "perf_common.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/random_lists.h"
#include "workload/video_gen.h"

namespace htl::net {
namespace {

constexpr int kWorkerThreads = 4;
constexpr int64_t kClientDeadlineMs = 500;
constexpr double kPhaseSeconds = 2.0;

// Mixed workload: three HTL shapes over the generated-video vocabulary and
// one type (1) formula for the SQL system.
const char* const kHtlQueries[] = {
    "exists x (type(x) = 'person') until exists y (type(y) = 'train')",
    "eventually exists x (moving(x) and armed(x))",
    "exists x (type(x) = 'horse') and eventually exists y (moving(y))",
};
constexpr const char* kSqlQuery = "p0() until eventually p1()";
constexpr int64_t kSqlN = 500;

struct Outcomes {
  std::vector<double> ok_latency_ms;  // Accepted (kWireOk) requests only.
  int64_t ok = 0;        // kWireOk, complete or partial/degraded.
  int64_t shed = 0;      // kWireOk with the degraded flag (soft watermark).
  int64_t rejected = 0;  // kWireOverloaded (hard watermark / draining).
  int64_t deadline = 0;  // kWireDeadlineExceeded or transport timeout.
  int64_t transport = 0; // Clean Unavailable (refused / reset / torn).
  int64_t bad = 0;       // Anything else — a robustness-contract violation.
  std::string first_bad;  // Diagnostic: what the first bad outcome was.

  int64_t total() const {
    return ok + rejected + deadline + transport + bad;
  }
  void AddBad(const std::string& what) {
    if (bad == 0) first_bad = what;
    ++bad;
  }
  void Merge(const Outcomes& other) {
    ok_latency_ms.insert(ok_latency_ms.end(), other.ok_latency_ms.begin(),
                         other.ok_latency_ms.end());
    ok += other.ok;
    shed += other.shed;
    rejected += other.rejected;
    deadline += other.deadline;
    transport += other.transport;
    if (bad == 0 && other.bad > 0) first_bad = other.first_bad;
    bad += other.bad;
  }
};

double Percentile(std::vector<double>* values, double p) {
  if (values->empty()) return 0.0;
  std::sort(values->begin(), values->end());
  const auto index = static_cast<size_t>(
      p * static_cast<double>(values->size() - 1) + 0.5);
  return (*values)[std::min(index, values->size() - 1)];
}

MetadataStore MakeStore() {
  MetadataStore store;
  Rng rng(0xBE9C);
  for (int i = 0; i < 8; ++i) {
    VideoGenOptions vopts;
    vopts.min_branching = 2;
    vopts.max_branching = 3;
    store.AddVideo(GenerateVideo(rng, vopts));
  }
  return store;
}

/// One closed-loop client: issues mixed HTL/SQL requests until the clock
/// runs out, recording per-request outcomes. Single attempt per request —
/// the harness measures raw shed/reject behaviour, not retry smoothing.
Outcomes RunClientLoop(uint16_t port, double seconds, uint64_t seed) {
  ClientOptions copts;
  copts.port = port;
  copts.max_attempts = 1;
  copts.io_timeout_ms = kClientDeadlineMs + 2000;  // Transport slack.
  const QueryClient client(copts);
  Rng rng(seed);
  Outcomes out;
  const WallTimer phase_timer;
  while (phase_timer.ElapsedSeconds() < seconds) {
    QueryRequest request;
    request.deadline_ms = kClientDeadlineMs;
    request.k = 10;
    const int64_t pick = rng.UniformInt(0, 3);
    if (pick == 3) {
      request.kind = QueryKind::kSql;
      request.query_text = kSqlQuery;
    } else {
      request.kind = QueryKind::kHtlSegments;
      request.level = 3;  // Generated videos carry facts on the shot level.
      request.query_text = kHtlQueries[pick];
    }
    const WallTimer request_timer;
    auto response = client.QueryOnce(request);
    const double ms =
        static_cast<double>(request_timer.ElapsedMicros()) / 1000.0;
    if (response.ok()) {
      switch (response->status) {
        case WireStatus::kWireOk:
          ++out.ok;
          if (response->degraded()) ++out.shed;
          out.ok_latency_ms.push_back(ms);
          break;
        case WireStatus::kWireOverloaded:
          ++out.rejected;
          break;
        case WireStatus::kWireDeadlineExceeded:
          ++out.deadline;
          break;
        default:
          // Parse/internal errors are not acceptable overload behaviour
          // for well-formed requests.
          out.AddBad(StrCat("wire status ", static_cast<int>(response->status),
                            ": ", response->message));
          break;
      }
    } else if (response.status().IsUnavailable()) {
      ++out.transport;
    } else if (response.status().IsDeadlineExceeded()) {
      ++out.deadline;
    } else {
      out.AddBad(response.status().ToString());
    }
  }
  return out;
}

/// Fans `num_clients` closed loops out on a pool and merges their outcomes.
Outcomes RunPhase(uint16_t port, int num_clients, double seconds,
                  uint64_t seed_base) {
  std::vector<Outcomes> per_client(static_cast<size_t>(num_clients));
  {
    ThreadPool pool(ThreadPool::Options{.num_threads = num_clients});
    for (int i = 0; i < num_clients; ++i) {
      Outcomes* slot = &per_client[static_cast<size_t>(i)];
      const uint64_t seed = seed_base + static_cast<uint64_t>(i);
      pool.Schedule(
          [port, seconds, seed, slot] { slot->Merge(RunClientLoop(port, seconds, seed)); });
    }
  }  // Pool destructor joins every client loop.
  Outcomes merged;
  for (const Outcomes& one : per_client) merged.Merge(one);
  return merged;
}

struct ScrapeStats {
  int64_t scrapes = 0;
  int64_t failures = 0;
};

/// A 1 Hz telemetry scraper: metrics text + healthz per tick, the cadence
/// tools/htlstat.py runs at. Every scrape must succeed — the admin plane is
/// exempt from admission control by design.
ScrapeStats RunScraper(uint16_t admin_port, double seconds) {
  ClientOptions copts;
  copts.port = admin_port;
  const AdminClient admin(copts);
  ScrapeStats stats;
  const WallTimer timer;
  while (timer.ElapsedSeconds() < seconds) {
    const auto metrics = admin.Fetch(AdminVerb::kMetricsText);
    const auto healthz = admin.Fetch(AdminVerb::kHealthz);
    ++stats.scrapes;
    if (!metrics.ok() || !healthz.ok()) ++stats.failures;
    const double next_tick = static_cast<double>(stats.scrapes);
    while (timer.ElapsedSeconds() < seconds &&
           timer.ElapsedSeconds() < next_tick) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  return stats;
}

/// One capacity-load round, optionally with the 1 Hz scraper riding along.
/// Returns the round's accepted throughput; scraper stats merge into *stats.
double RunScrapedRound(uint16_t port, uint16_t admin_port, double seconds,
                       uint64_t seed_base, bool scrape, ScrapeStats* stats,
                       Outcomes* merged) {
  std::vector<Outcomes> per_client(kWorkerThreads);
  ScrapeStats round_stats;
  {
    ThreadPool pool(ThreadPool::Options{.num_threads = kWorkerThreads + 1});
    for (int i = 0; i < kWorkerThreads; ++i) {
      Outcomes* slot = &per_client[static_cast<size_t>(i)];
      const uint64_t seed = seed_base + static_cast<uint64_t>(i);
      pool.Schedule([port, seconds, seed, slot] {
        slot->Merge(RunClientLoop(port, seconds, seed));
      });
    }
    if (scrape) {
      pool.Schedule([admin_port, seconds, &round_stats] {
        round_stats = RunScraper(admin_port, seconds);
      });
    }
  }  // Pool destructor joins clients and scraper.
  Outcomes round;
  for (const Outcomes& one : per_client) round.Merge(one);
  const double qps = static_cast<double>(round.ok) / seconds;
  stats->scrapes += round_stats.scrapes;
  stats->failures += round_stats.failures;
  merged->Merge(round);
  return qps;
}

void Record(bench::BenchJson* json, const char* phase, Outcomes* out,
            double seconds) {
  const double total = static_cast<double>(out->total());
  const double denom = total > 0 ? total : 1;
  const double p50 = Percentile(&out->ok_latency_ms, 0.50);
  const double p99 = Percentile(&out->ok_latency_ms, 0.99);
  json->Add(phase,
            {{"requests", total},
             {"throughput_qps", static_cast<double>(out->ok) / seconds},
             {"p50_ms", p50},
             {"p99_ms", p99},
             {"ok_fraction", static_cast<double>(out->ok) / denom},
             {"shed_fraction", static_cast<double>(out->shed) / denom},
             {"reject_fraction", static_cast<double>(out->rejected) / denom},
             {"deadline_fraction", static_cast<double>(out->deadline) / denom},
             {"transport_fraction",
              static_cast<double>(out->transport) / denom},
             {"bad", static_cast<double>(out->bad)}});
  std::printf(
      "%-16s %6lld req  %8.1f qps  p50 %7.2f ms  p99 %7.2f ms  "
      "shed %4.1f%%  reject %4.1f%%  bad %lld\n",
      phase, static_cast<long long>(out->total()),
      static_cast<double>(out->ok) / seconds, p50, p99,
      100.0 * static_cast<double>(out->shed) / denom,
      100.0 * static_cast<double>(out->rejected) / denom,
      static_cast<long long>(out->bad));
  if (out->bad > 0) {
    std::printf("  first bad outcome: %s\n", out->first_bad.c_str());
  }
}

bool Gate(bool ok, const char* what) {
  if (!ok) std::printf("GATE FAILED: %s\n", what);
  return ok;
}

int Run() {
  obs::MetricsRegistry::Instance().SetEnabled(true);
  bench::BenchJson json("server");

  MetadataStore store = MakeStore();
  ServerOptions options;
  options.worker_threads = kWorkerThreads;
  options.soft_watermark = kWorkerThreads + 2;
  options.hard_watermark = 4 * kWorkerThreads;
  options.default_deadline_ms = kClientDeadlineMs;
  options.drain_deadline_ms = 2000;
  {
    Rng rng(777);
    RandomListOptions lopts;
    lopts.num_segments = kSqlN;
    options.sql_inputs["p0"] = GenerateRandomList(rng, lopts);
    options.sql_inputs["p1"] = GenerateRandomList(rng, lopts);
    options.sql_n = kSqlN;
  }
  QueryServer server(&store, options);
  if (Status started = server.Start(); !started.ok()) {
    std::printf("server start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  const uint16_t port = server.port();
  bool all_ok = true;

  // Phase 1 — capacity: as many closed loops as workers. This is the
  // denominator for "10x capacity" below.
  Outcomes capacity = RunPhase(port, kWorkerThreads, kPhaseSeconds, 1000);
  Record(&json, "capacity", &capacity, kPhaseSeconds);
  all_ok &= Gate(capacity.bad == 0, "capacity: malformed outcome");
  all_ok &= Gate(capacity.ok > 0, "capacity: no request succeeded");

  // Phase 2 — overload: 10x the capacity client count. Liveness + shape:
  // plenty of answers, all well-formed, sheds/rejects explicit, and the
  // p99 of *accepted* requests stays bounded by the client deadline (plus
  // transport slack) — overload must not smear accepted latencies.
  Outcomes overload =
      RunPhase(port, 10 * kWorkerThreads, kPhaseSeconds, 2000);
  Record(&json, "overload_10x", &overload, kPhaseSeconds);
  all_ok &= Gate(overload.bad == 0, "overload: malformed outcome");
  all_ok &= Gate(overload.ok > 0, "overload: no request succeeded");
  all_ok &= Gate(overload.total() > overload.ok,
                 "overload: nothing was shed, rejected, or timed out at 10x "
                 "capacity (watermarks never engaged)");
  const double p99 = Percentile(&overload.ok_latency_ms, 0.99);
  all_ok &= Gate(p99 <= static_cast<double>(kClientDeadlineMs) + 1500.0,
                 "overload: accepted p99 not bounded by the client deadline");

  // Liveness probe after the storm: one plain request must succeed.
  {
    ClientOptions copts;
    copts.port = port;
    copts.max_attempts = 3;
    const QueryClient probe(copts);
    QueryRequest request;
    request.level = 3;
    request.query_text = kHtlQueries[0];
    auto response = probe.Query(request);
    all_ok &= Gate(response.ok() && response->ok(),
                   "liveness: post-overload request failed");
  }

  // Phase 3 — admin scrape under load: a 1 Hz telemetry scraper (the
  // tools/htlstat.py cadence) must cost < 2% throughput at capacity load.
  // Best-of-3 alternating unscraped/scraped rounds fight scheduler noise;
  // every scrape must succeed — the admin plane never sheds.
  {
    double min_ratio = 0.98;
    if (const char* env = std::getenv("HTL_ADMIN_SCRAPE_MIN_RATIO");
        env != nullptr) {
      char* end = nullptr;
      const double parsed = std::strtod(env, &end);
      if (end != env && parsed > 0) min_ratio = parsed;
    }
    double unscraped_qps = 0.0, scraped_qps = 0.0;
    ScrapeStats stats;
    Outcomes scrape_phase;
    for (int round = 0; round < 3; ++round) {
      const uint64_t seed = 4000 + 100 * static_cast<uint64_t>(round);
      unscraped_qps = std::max(
          unscraped_qps,
          RunScrapedRound(port, server.admin_port(), kPhaseSeconds, seed,
                          /*scrape=*/false, &stats, &scrape_phase));
      scraped_qps = std::max(
          scraped_qps,
          RunScrapedRound(port, server.admin_port(), kPhaseSeconds, seed + 50,
                          /*scrape=*/true, &stats, &scrape_phase));
    }
    const double ratio =
        unscraped_qps > 0 ? scraped_qps / unscraped_qps : 0.0;
    Record(&json, "admin_scrape", &scrape_phase, 6 * kPhaseSeconds);
    json.Add("admin_scrape_cost",
             {{"unscraped_qps", unscraped_qps},
              {"scraped_qps", scraped_qps},
              {"throughput_ratio", ratio},
              {"min_ratio", min_ratio},
              {"scrapes", static_cast<double>(stats.scrapes)},
              {"scrape_failures", static_cast<double>(stats.failures)}});
    std::printf(
        "admin scrape: %8.1f qps unscraped, %8.1f qps scraped "
        "(ratio %.3f, floor %.3f), %lld scrapes, %lld failed\n",
        unscraped_qps, scraped_qps, ratio, min_ratio,
        static_cast<long long>(stats.scrapes),
        static_cast<long long>(stats.failures));
    all_ok &= Gate(stats.scrapes > 0, "admin scrape: scraper never ran");
    all_ok &= Gate(stats.failures == 0,
                   "admin scrape: a telemetry scrape failed under load");
    all_ok &= Gate(ratio >= min_ratio,
                   "admin scrape: 1 Hz scraper cost exceeded the bound");
    all_ok &= Gate(scrape_phase.bad == 0, "admin scrape: malformed outcome");
  }

  // Phase 4 — drain under load: shut down while 8 loops are firing. The
  // gates: Shutdown returns OK (nothing leaked), promptly, and the load
  // threads saw only well-formed outcomes throughout.
  {
    std::vector<Outcomes> per_client(8);
    const WallTimer drain_timer;
    double shutdown_s = 0.0;
    Status drained = Status::OK();
    {
      ThreadPool pool(ThreadPool::Options{.num_threads = 8});
      for (size_t i = 0; i < per_client.size(); ++i) {
        Outcomes* slot = &per_client[i];
        const uint64_t seed = 3000 + i;
        pool.Schedule([port, seed, slot] {
          slot->Merge(RunClientLoop(port, 1.0, seed));
        });
      }
      // Let load build, then pull the plug mid-flight.
      while (drain_timer.ElapsedSeconds() < 0.3) {
      }
      const WallTimer shutdown_timer;
      drained = server.Shutdown();
      shutdown_s = shutdown_timer.ElapsedSeconds();
    }
    Outcomes drain;
    for (const Outcomes& one : per_client) drain.Merge(one);
    Record(&json, "drain_under_load", &drain, 1.0);
    json.Add("drain", {{"shutdown_s", shutdown_s},
                       {"in_flight_after", static_cast<double>(server.in_flight())}});
    all_ok &= Gate(drained.ok(), "drain: Shutdown reported a leak");
    all_ok &= Gate(server.in_flight() == 0, "drain: sessions left in flight");
    all_ok &= Gate(shutdown_s < 2.0 + 10.0, "drain: shutdown exceeded bound");
    all_ok &= Gate(drain.bad == 0, "drain: malformed outcome under drain");
  }

  std::printf(all_ok ? "\nall gates passed\n" : "\nGATES FAILED\n");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace htl::net

int main() { return htl::net::Run(); }
