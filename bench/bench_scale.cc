// Million-video scale sweep: sharded scatter-gather retrieval with
// bound-based top-k pruning over synthetic corpora (workload/video_gen
// GenerateCorpus). For each corpus size the same top-k queries run as
// paired arms — pruning off vs on, serial unsharded vs sharded-parallel —
// reporting qps and the pruned fraction, and verifying that every arm
// returns the unpruned serial arm's ranked output bit for bit.
//
// Gates (CI runs this binary directly; non-zero exit on failure):
//   - every arm's hits equal the unpruned serial baseline exactly;
//   - at the largest corpus of at least 10^5 videos, the selective query's
//     pruned fraction is >= 0.30 (override with HTL_SCALE_PRUNED_LIMIT);
//   - pruned videos never intersect the top-k result.
//
// Corpus sizes default to {10^4, 10^5}; set HTL_BENCH_SCALE_MAX_VIDEOS
// (e.g. 1000000) to append a larger sweep point.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "engine/retrieval.h"
#include "model/video.h"
#include "perf_common.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/video_gen.h"

namespace {

using namespace htl;

int64_t EnvInt(const char* name, int64_t fallback) {
  if (const char* env = std::getenv(name); env != nullptr) {
    char* end = nullptr;
    const long long parsed = std::strtoll(env, &end, 10);
    if (end != env && parsed > 0) return parsed;
  }
  return fallback;
}

double EnvDouble(const char* name, double fallback) {
  if (const char* env = std::getenv(name); env != nullptr) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0) return parsed;
  }
  return fallback;
}

bool SameHits(const std::vector<SegmentHit>& got, const std::vector<SegmentHit>& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].video != want[i].video || got[i].segment != want[i].segment ||
        got[i].sim.actual != want[i].sim.actual || got[i].sim.max != want[i].sim.max) {
      return false;
    }
  }
  return true;
}

struct Arm {
  const char* label;
  bool prune;
  int num_shards;
  int parallelism;  // 1 = serial; 0 = default hardware parallelism.
};

}  // namespace

int main() {
  obs::MetricsRegistry::Instance().SetEnabled(true);
  bench::BenchJson json("scale");

  constexpr int64_t kTopK = 10;
  constexpr int kRounds = 3;
  const double pruned_limit = EnvDouble("HTL_SCALE_PRUNED_LIMIT", 0.30);

  std::vector<int64_t> sizes = {10'000, 100'000};
  const int64_t max_videos = EnvInt("HTL_BENCH_SCALE_MAX_VIDEOS", 0);
  if (max_videos > sizes.back()) sizes.push_back(max_videos);

  struct Query {
    const char* label;
    const char* text;
    bool selective;  // Counts toward the pruned-fraction gate.
  };
  const Query queries[] = {
      // Matches only the rare markers GenerateCorpus plants in ~5% of the
      // corpus: every unmarked video has a provable zero bound, the shape
      // pruning is built for.
      {"selective", "exists x (type(x) = 'zeppelin' and rare_event(x))", true},
      // Matches a dense predicate: bounds stay high, pruning stays honest
      // (bit-identical) but cannot skip much — the no-free-lunch arm.
      {"broad", "exists x (moving(x))", false},
  };
  const Arm arms[] = {
      {"serial", false, 1, 1},
      {"serial+prune", true, 1, 1},
      {"sharded", false, 8, 0},
      {"sharded+prune", true, 8, 0},
  };

  bool failed = false;
  for (const int64_t size : sizes) {
    CorpusGenOptions corpus;
    corpus.num_videos = size;
    corpus.video.levels = 2;
    corpus.video.min_branching = 2;
    corpus.video.max_branching = 4;
    corpus.video.num_objects = 3;
    corpus.video.object_density = 0.3;
    corpus.selective_fraction = 0.05;
    corpus.seed = 0xBEEF + static_cast<uint64_t>(size);
    MetadataStore store;
    WallTimer gen_timer;
    const std::vector<MetadataStore::VideoId> selective_ids =
        GenerateCorpus(corpus, &store);
    std::printf("corpus %lld videos (%zu selective) generated in %.2fs\n",
                static_cast<long long>(size), selective_ids.size(),
                gen_timer.ElapsedSeconds());

    for (const Query& q : queries) {
      // The unpruned serial arm is the baseline every other arm must match.
      std::vector<SegmentHit> baseline;
      for (const Arm& arm : arms) {
        QueryOptions options;
        options.prune = arm.prune;
        options.num_shards = arm.num_shards;
        options.parallelism = arm.parallelism;
        Retriever r(&store, options);
        Result<FormulaPtr> f = r.Prepare(q.text);
        HTL_CHECK(f.ok()) << f.status().ToString();

        // Warm once (per-video engines and stats build lazily), then time.
        Result<SegmentRetrieval> warm =
            r.TopSegmentsWithReport(*f.value(), 2, kTopK);
        HTL_CHECK(warm.ok()) << warm.status().ToString();
        double best_s = 1e99;
        SegmentRetrieval out;
        for (int round = 0; round < kRounds; ++round) {
          WallTimer timer;
          Result<SegmentRetrieval> run =
              r.TopSegmentsWithReport(*f.value(), 2, kTopK);
          const double s = timer.ElapsedSeconds();
          HTL_CHECK(run.ok()) << run.status().ToString();
          best_s = std::min(best_s, s);
          out = std::move(run).value();
        }
        HTL_CHECK(out.report.complete()) << out.report.ToString();

        if (arm.label == std::string_view("serial")) baseline = out.hits;
        const bool match = SameHits(out.hits, baseline);
        if (!match) {
          std::printf("FAIL: %s / %s / %lld diverges from the serial baseline\n",
                      q.label, arm.label, static_cast<long long>(size));
          failed = true;
        }
        // Pruned videos must be disjoint from the result — the pruning
        // soundness spot check the differential battery proves in depth.
        std::set<MetadataStore::VideoId> pruned(out.report.pruned_videos.begin(),
                                                out.report.pruned_videos.end());
        for (const SegmentHit& hit : out.hits) {
          if (pruned.count(hit.video) != 0) {
            std::printf("FAIL: pruned video %lld appears in the top-k\n",
                        static_cast<long long>(hit.video));
            failed = true;
          }
        }

        const double qps = best_s > 0 ? 1.0 / best_s : 0.0;
        const double pruned_fraction =
            static_cast<double>(out.report.videos_pruned) / static_cast<double>(size);
        std::printf(
            "%-10s %-14s size %-8lld  %8.3f ms/query  %8.2f qps  pruned %5.1f%%%s\n",
            q.label, arm.label, static_cast<long long>(size), 1e3 * best_s, qps,
            1e2 * pruned_fraction, match ? "" : "   RESULTS DIFFER!");
        json.Add(StrCat(q.label, " / ", arm.label, " / ", size),
                 {{"size", static_cast<double>(size)},
                  {"prune", arm.prune ? 1.0 : 0.0},
                  {"num_shards", static_cast<double>(arm.num_shards)},
                  {"seconds_per_query", best_s},
                  {"qps", qps},
                  {"videos_pruned", static_cast<double>(out.report.videos_pruned)},
                  {"pruned_fraction", pruned_fraction},
                  {"hits_match_baseline", match ? 1.0 : 0.0}});

        // The headline gate: at the largest corpus of >= 10^5 videos the
        // selective query must prune at least the limit fraction.
        if (q.selective && arm.prune && arm.num_shards <= 1 && size >= 100'000 &&
            size == sizes.back()) {
          if (pruned_fraction < pruned_limit) {
            std::printf(
                "FAIL: selective pruned fraction %.3f below the %.2f gate at "
                "%lld videos\n",
                pruned_fraction, pruned_limit, static_cast<long long>(size));
            failed = true;
          }
        }
      }
    }
  }

  if (failed) return 1;
  std::printf(
      "PASS: all arms bit-identical to the serial baseline; selective pruning "
      "above the %.2f gate\n",
      pruned_limit);
  return 0;
}
