// End-to-end retrieval throughput across a multi-video store — the
// operation a user of figure 1's architecture actually issues: parse the
// query once, evaluate per video, rank globally, return the top k.
//
// Also measures the cost of the execution-resilience layer: each query runs
// once with no ExecContext and once with a default (no deadline, unlimited
// budgets) context, so the per-query polling overhead is visible. Target:
// the default context costs < 2% (recorded in BENCH_retrieval.json as
// `exec_ctx_overhead`).

#include <cstdio>

#include "engine/exec_context.h"
#include "engine/retrieval.h"
#include "perf_common.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/video_gen.h"

int main() {
  using namespace htl;

  bench::BenchJson json("retrieval");
  std::printf("store-wide top-k retrieval (query parsed once per run)\n");
  std::printf("%-8s %-14s %-10s %-40s %-12s %-12s %s\n", "videos", "shots/video", "k",
              "query", "ms/query", "ms w/ctx", "ctx overhead");
  const char* queries[] = {
      "exists p (type(p) = 'person' and armed(p))",
      "exists p (present(p)) until duration >= 90",
      "exists a, b (present(a) and present(b) and fires_at(a, b))",
  };
  double total_plain = 0, total_ctx = 0;
  for (int num_videos : {4, 16, 64}) {
    MetadataStore store;
    Rng rng(2024);
    VideoGenOptions opts;
    opts.levels = 2;
    opts.min_branching = 40;
    opts.max_branching = 60;
    for (int i = 0; i < num_videos; ++i) store.AddVideo(GenerateVideo(rng, opts));
    Retriever retriever(&store);
    for (const char* q : queries) {
      auto prepared = retriever.Prepare(q);
      if (!prepared.ok()) {
        std::printf("query error: %s\n", prepared.status().ToString().c_str());
        return 1;
      }
      constexpr int kReps = 40;
      // Warm-up: the first run of each query pays the atomic picture
      // indexing, which would otherwise be billed to the null-context arm.
      size_t hits = 0;
      {
        auto result = retriever.TopSegments(*prepared.value(), 2, 10);
        if (!result.ok()) {
          std::printf("retrieval error: %s\n", result.status().ToString().c_str());
          return 1;
        }
        hits = result.value().size();
      }
      auto time_arm = [&](ExecContext* ctx) -> double {
        WallTimer timer;
        for (int r = 0; r < kReps; ++r) {
          auto result = retriever.TopSegments(*prepared.value(), 2, 10, ctx);
          HTL_CHECK(result.ok()) << result.status().ToString();
        }
        return 1e3 * timer.ElapsedSeconds() / kReps;
      };
      const double plain_ms = time_arm(nullptr);
      ExecContext ctx;  // Default: no deadline, unlimited budgets.
      const double ctx_ms = time_arm(&ctx);
      total_plain += plain_ms;
      total_ctx += ctx_ms;
      const double overhead = plain_ms > 0 ? ctx_ms / plain_ms - 1.0 : 0.0;
      std::printf("%-8d %-14s %-10zu %-40s %-12.3f %-12.3f %+.1f%%\n", num_videos,
                  "40-60", hits, q, plain_ms, ctx_ms, 1e2 * overhead);
      json.Add(StrCat(num_videos, " videos / ", q),
               {{"videos", static_cast<double>(num_videos)},
                {"plain_ms", plain_ms},
                {"ctx_ms", ctx_ms},
                {"exec_ctx_overhead", overhead}});
    }
  }
  const double total_overhead = total_plain > 0 ? total_ctx / total_plain - 1.0 : 0.0;
  std::printf("\naggregate ExecContext overhead (default context vs none): %+.2f%% "
              "(target < 2%%)\n", 1e2 * total_overhead);
  json.Add("aggregate", {{"plain_ms", total_plain},
                         {"ctx_ms", total_ctx},
                         {"exec_ctx_overhead", total_overhead}});
  std::printf("\ncost scales with total store size; the retriever caches per-video\n"
              "engines, so repeated queries reuse atomic picture tables (the first\n"
              "run of each query pays the indexing).\n");

  // Parallelism sweep: the same store-wide retrieval fanned out over the
  // per-video chunks of the shared ThreadPool. Results are bit-identical to
  // the serial run by contract; only wall-clock changes. Speedup is bounded
  // by the physical core count — on a single-core host every level degrades
  // to time-slicing and the honest expectation is ~1.0x, not 2x.
  std::printf("\nparallelism sweep (%d hardware thread(s) available)\n",
              ThreadPool::DefaultParallelism());
  std::printf("%-14s %-10s %-12s %s\n", "parallelism", "workers", "ms/query",
              "speedup vs p=1");
  {
    MetadataStore store;
    Rng rng(2024);
    VideoGenOptions opts;
    opts.levels = 2;
    opts.min_branching = 40;
    opts.max_branching = 60;
    for (int i = 0; i < 16; ++i) store.AddVideo(GenerateVideo(rng, opts));
    ThreadPool pool(ThreadPool::Options{8, 0});
    const char* sweep_query =
        "exists a, b (present(a) and present(b) and fires_at(a, b))";
    double serial_ms = 0;
    for (int parallelism : {1, 2, 4, 8}) {
      QueryOptions options;
      options.parallelism = parallelism;
      options.thread_pool = &pool;
      Retriever retriever(&store, options);
      auto prepared = retriever.Prepare(sweep_query);
      if (!prepared.ok()) {
        std::printf("query error: %s\n", prepared.status().ToString().c_str());
        return 1;
      }
      // Warm the per-video engine caches so every level times steady state.
      HTL_CHECK(retriever.TopSegments(*prepared.value(), 2, 10).ok());
      constexpr int kReps = 20;
      WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        auto result = retriever.TopSegments(*prepared.value(), 2, 10);
        HTL_CHECK(result.ok()) << result.status().ToString();
      }
      const double ms = 1e3 * timer.ElapsedSeconds() / kReps;
      if (parallelism == 1) serial_ms = ms;
      const double speedup = ms > 0 ? serial_ms / ms : 0.0;
      std::printf("%-14d %-10d %-12.3f %.2fx\n", parallelism, parallelism, ms,
                  speedup);
      json.Add(StrCat("parallel sweep p=", parallelism),
               {{"parallelism", static_cast<double>(parallelism)},
                {"ms_per_query", ms},
                {"speedup_vs_serial", speedup}});
    }
  }
  return 0;
}
