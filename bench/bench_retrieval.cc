// End-to-end retrieval throughput across a multi-video store — the
// operation a user of figure 1's architecture actually issues: parse the
// query once, evaluate per video, rank globally, return the top k.

#include <cstdio>

#include "engine/retrieval.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/video_gen.h"

int main() {
  using namespace htl;

  std::printf("store-wide top-k retrieval (query parsed once per run)\n");
  std::printf("%-8s %-14s %-10s %-40s %s\n", "videos", "shots/video", "k", "query",
              "ms/query");
  const char* queries[] = {
      "exists p (type(p) = 'person' and armed(p))",
      "exists p (present(p)) until duration >= 90",
      "exists a, b (present(a) and present(b) and fires_at(a, b))",
  };
  for (int num_videos : {4, 16, 64}) {
    MetadataStore store;
    Rng rng(2024);
    VideoGenOptions opts;
    opts.levels = 2;
    opts.min_branching = 40;
    opts.max_branching = 60;
    for (int i = 0; i < num_videos; ++i) store.AddVideo(GenerateVideo(rng, opts));
    Retriever retriever(&store);
    for (const char* q : queries) {
      auto prepared = retriever.Prepare(q);
      if (!prepared.ok()) {
        std::printf("query error: %s\n", prepared.status().ToString().c_str());
        return 1;
      }
      constexpr int kReps = 10;
      WallTimer timer;
      size_t hits = 0;
      for (int r = 0; r < kReps; ++r) {
        auto result = retriever.TopSegments(*prepared.value(), 2, 10);
        if (!result.ok()) {
          std::printf("retrieval error: %s\n", result.status().ToString().c_str());
          return 1;
        }
        hits = result.value().size();
      }
      std::printf("%-8d %-14s %-10zu %-40s %.3f\n", num_videos, "40-60", hits, q,
                  1e3 * timer.ElapsedSeconds() / kReps);
    }
  }
  std::printf("\ncost scales with total store size; the retriever caches per-video\n"
              "engines, so repeated queries reuse atomic picture tables (the first\n"
              "run of each query pays the indexing).\n");
  return 0;
}
