// Ablation for the multi-level extension (extended conjunctive formulas,
// end of section 3): cost of evaluating level-modal queries as the
// hierarchy deepens and widens. The paper defers these algorithms to the
// full version; this measures our per-parent-subsequence evaluation.

#include <cstdio>

#include "engine/direct_engine.h"
#include "htl/binder.h"
#include "htl/parser.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/video_gen.h"

int main() {
  using namespace htl;

  std::printf("level-modal evaluation cost vs hierarchy shape\n");
  std::printf("%-8s %-10s %-12s %-12s %s\n", "levels", "branching", "leaves",
              "query", "ms/eval");
  for (int levels : {2, 3, 4}) {
    for (int branching : {4, 8}) {
      Rng rng(1234);
      VideoGenOptions opts;
      opts.levels = levels;
      opts.min_branching = branching;
      opts.max_branching = branching;
      opts.num_objects = 5;
      VideoTree video = GenerateVideo(rng, opts);

      const char* queries[] = {
          "at-next-level(eventually exists p (type(p) = 'person'))",
          "at-frame-level(exists p (present(p)) until duration >= 50)",
      };
      for (const char* q : queries) {
        auto parsed = ParseFormula(q);
        if (!parsed.ok()) return 1;
        if (!Bind(parsed.value().get()).ok()) return 1;
        // at-next-level from level 1 works for any depth; at-frame-level
        // needs the leaf level to differ from the evaluation level.
        const int eval_level = 1;
        if (levels == 2 && std::string(q).find("frame") != std::string::npos) continue;
        DirectEngine engine(&video);
        constexpr int kReps = 20;
        WallTimer timer;
        for (int i = 0; i < kReps; ++i) {
          engine.ClearCache();
          auto r = engine.EvaluateList(eval_level, *parsed.value());
          if (!r.ok()) {
            std::printf("error: %s\n", r.status().ToString().c_str());
            return 1;
          }
        }
        std::printf("%-8d %-10d %-12lld %-12.12s %.3f\n", levels, branching,
                    static_cast<long long>(video.NumSegments(video.num_levels())), q,
                    1e3 * timer.ElapsedSeconds() / kReps);
      }
    }
  }
  std::printf("\ncost grows with the number of nodes whose descendant subsequences are\n"
              "evaluated; atomic picture queries are cached per level.\n");
  return 0;
}
