// Measures the cost of the observability layer's *disarmed* paths — the
// price every query pays now that spans and counters are compiled into the
// hot kernels. Arms:
//
//   baseline   no ExecContext at all (instrumentation still compiled in;
//              every HTL_OBS_COUNT is one relaxed load + branch, every
//              TraceSpan a null-pointer test);
//   ctx        default ExecContext, no trace attached — the configuration
//              the <2% bar of PR 2 was set against, now also carrying the
//              disarmed trace checks;
//   traced     ExecContext with a QueryTrace attached (informational: what
//              EXPLAIN costs when you ask for it);
//   metrics    no trace, MetricsRegistry enabled (informational: armed
//              counters without spans);
//   querylog   no trace, plus one wide-event QueryLog::Record per query with
//              profile retention disarmed — what the server's query log
//              costs on requests that are not slow/sampled.
//
// The gates: ctx vs baseline AND querylog vs baseline must stay under the
// overhead limit (default 2%, override with HTL_OBS_OVERHEAD_LIMIT).
// Per-arm times are best-of-rounds to fight scheduler noise; the binary
// exits non-zero when a gate fails, so CI can run it directly.

#include <cstdio>
#include <cstdlib>

#include "engine/exec_context.h"
#include "engine/retrieval.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "perf_common.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/video_gen.h"

int main() {
  using namespace htl;

  double limit = 0.02;
  if (const char* env = std::getenv("HTL_OBS_OVERHEAD_LIMIT"); env != nullptr) {
    char* end = nullptr;
    const double parsed = std::strtod(env, &end);
    if (end != env && parsed > 0) limit = parsed;
  }

  bench::BenchJson json("obs_overhead");
  MetadataStore store;
  Rng rng(2024);
  VideoGenOptions opts;
  opts.levels = 2;
  opts.min_branching = 40;
  opts.max_branching = 60;
  for (int i = 0; i < 32; ++i) store.AddVideo(GenerateVideo(rng, opts));
  Retriever retriever(&store);

  const char* queries[] = {
      "exists p (type(p) = 'person' and armed(p))",
      "exists p (present(p)) until duration >= 90",
      "exists a, b (present(a) and present(b) and fires_at(a, b))",
  };

  constexpr int kReps = 250;
  constexpr int kRounds = 12;
  double total_baseline = 0, total_ctx = 0, total_traced = 0, total_metrics = 0;
  double total_querylog = 0;

  // The disarmed server configuration: a bounded ring, never retaining a
  // profile — every Record is a lock, a struct copy, and a slot overwrite.
  obs::QueryLog::Options qlopts;
  qlopts.slow_threshold_us = -1;
  obs::QueryLog query_log(qlopts);

  std::printf("observability disarmed-path overhead (32 videos, best of %d rounds)\n",
              kRounds);
  std::printf("%-40s %-12s %-12s %-12s %-12s %-12s %s\n", "query", "baseline ms",
              "ctx ms", "traced ms", "metrics ms", "querylog ms", "ctx overhead");

  for (const char* q : queries) {
    auto prepared = retriever.Prepare(q);
    if (!prepared.ok()) {
      std::printf("query error: %s\n", prepared.status().ToString().c_str());
      return 1;
    }
    const Formula& f = *prepared.value();
    // Warm-up pays the per-video atomic indexing once.
    {
      auto warm = retriever.TopSegments(f, 2, 10);
      HTL_CHECK(warm.ok()) << warm.status().ToString();
    }
    // One timed pass is kReps queries; `traced` attaches a fresh trace per
    // query (that is what a profiled query costs end to end). Arms are
    // interleaved round-robin inside every round so scheduler drift and
    // frequency scaling hit all of them alike, and each arm keeps its best
    // round.
    auto time_arm = [&](ExecContext* ctx, bool attach_trace) -> double {
      WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        if (attach_trace) {
          obs::QueryTrace trace;
          ctx->set_trace(&trace);
          auto result = retriever.TopSegments(f, 2, 10, ctx);
          ctx->set_trace(nullptr);
          HTL_CHECK(result.ok()) << result.status().ToString();
          // Include profile construction in the traced arm's cost.
          const obs::QueryProfile profile = trace.Finish();
          HTL_CHECK(!profile.empty());
        } else {
          auto result = retriever.TopSegments(f, 2, 10, ctx);
          HTL_CHECK(result.ok()) << result.status().ToString();
        }
      }
      return 1e3 * timer.ElapsedSeconds() / kReps;
    };

    // The querylog arm: the baseline query plus the wide event the server
    // lands for it (fields filled the way src/net/server.cc fills them).
    auto time_querylog_arm = [&]() -> double {
      WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        auto result = retriever.TopSegments(f, 2, 10, nullptr);
        HTL_CHECK(result.ok()) << result.status().ToString();
        obs::QueryLogRecord record;
        record.query = q;
        record.fingerprint = static_cast<uint64_t>(r) + 1;
        record.kind = 0;
        record.level = 2;
        record.k = 10;
        record.execute_us = 1;
        record.total_us = 1;
        query_log.Record(std::move(record));
      }
      return 1e3 * timer.ElapsedSeconds() / kReps;
    };

    ExecContext ctx;  // Default: no deadline, unlimited budgets, no trace.
    ExecContext traced_ctx;
    double baseline_ms = 1e99, ctx_ms = 1e99, traced_ms = 1e99, metrics_ms = 1e99;
    double querylog_ms = 1e99;
    for (int round = 0; round < kRounds; ++round) {
      baseline_ms = std::min(baseline_ms, time_arm(nullptr, false));
      ctx_ms = std::min(ctx_ms, time_arm(&ctx, false));
      traced_ms = std::min(traced_ms, time_arm(&traced_ctx, true));
      obs::MetricsRegistry::Instance().SetEnabled(true);
      metrics_ms = std::min(metrics_ms, time_arm(nullptr, false));
      obs::MetricsRegistry::Instance().SetEnabled(false);
      querylog_ms = std::min(querylog_ms, time_querylog_arm());
    }

    total_baseline += baseline_ms;
    total_ctx += ctx_ms;
    total_traced += traced_ms;
    total_metrics += metrics_ms;
    total_querylog += querylog_ms;
    const double overhead = baseline_ms > 0 ? ctx_ms / baseline_ms - 1.0 : 0.0;
    std::printf("%-40s %-12.3f %-12.3f %-12.3f %-12.3f %-12.3f %+.1f%%\n", q,
                baseline_ms, ctx_ms, traced_ms, metrics_ms, querylog_ms,
                1e2 * overhead);
    json.Add(q, {{"baseline_ms", baseline_ms},
                 {"ctx_ms", ctx_ms},
                 {"traced_ms", traced_ms},
                 {"metrics_ms", metrics_ms},
                 {"querylog_ms", querylog_ms},
                 {"disarmed_overhead", overhead}});
  }

  const double overhead =
      total_baseline > 0 ? total_ctx / total_baseline - 1.0 : 0.0;
  const double traced_overhead =
      total_baseline > 0 ? total_traced / total_baseline - 1.0 : 0.0;
  const double metrics_overhead =
      total_baseline > 0 ? total_metrics / total_baseline - 1.0 : 0.0;
  const double querylog_overhead =
      total_baseline > 0 ? total_querylog / total_baseline - 1.0 : 0.0;
  json.Add("aggregate", {{"baseline_ms", total_baseline},
                         {"ctx_ms", total_ctx},
                         {"traced_ms", total_traced},
                         {"metrics_ms", total_metrics},
                         {"querylog_ms", total_querylog},
                         {"disarmed_overhead", overhead},
                         {"traced_overhead", traced_overhead},
                         {"metrics_overhead", metrics_overhead},
                         {"querylog_overhead", querylog_overhead},
                         {"limit", limit}});
  std::printf(
      "\naggregate: disarmed (ctx, no trace) %+.2f%% vs baseline (limit %.0f%%);\n"
      "querylog (wide event, no retention) %+.2f%% (same limit);\n"
      "traced %+.2f%%, metrics-enabled %+.2f%% (informational)\n",
      1e2 * overhead, 1e2 * limit, 1e2 * querylog_overhead,
      1e2 * traced_overhead, 1e2 * metrics_overhead);

  bool failed = false;
  if (overhead > limit) {
    std::printf("FAIL: disarmed observability overhead %.2f%% exceeds limit %.0f%%\n",
                1e2 * overhead, 1e2 * limit);
    failed = true;
  }
  if (querylog_overhead > limit) {
    std::printf("FAIL: disarmed query-log overhead %.2f%% exceeds limit %.0f%%\n",
                1e2 * querylog_overhead, 1e2 * limit);
    failed = true;
  }
  if (failed) return 1;
  std::printf("PASS: disarmed observability and query-log overhead within limit\n");
  return 0;
}
