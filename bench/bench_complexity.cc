// Ablation for the section 3.1 complexity claim: evaluating a type (1)
// formula of length p over atomic lists of total length l costs O(l * p).
// Sweeps the formula length (chains of AND / UNTIL / EVENTUALLY over fresh
// atomic predicates) at fixed input size and prints seconds per (l * p).

#include <cstdio>

#include "engine/direct_engine.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "workload/random_lists.h"

namespace {

using namespace htl;

FormulaPtr Chain(int p, const char* op) {
  FormulaPtr f = MakePredicate("p0", {});
  for (int i = 1; i < p; ++i) {
    FormulaPtr leaf = MakePredicate(StrCat("p", i), {});
    if (std::string(op) == "and") {
      f = MakeAnd(std::move(f), std::move(leaf));
    } else {
      f = MakeUntil(std::move(f), std::move(leaf));
    }
  }
  return f;
}

}  // namespace

int main() {
  constexpr int64_t kSize = 100'000;
  constexpr int kReps = 10;
  std::printf("type (1) evaluation cost vs formula length (size %lld, O(l*p) claim)\n",
              static_cast<long long>(kSize));
  std::printf("%-6s %-8s %-14s %-14s %s\n", "p", "op", "total l", "seconds",
              "ns per l*p");
  for (const char* op : {"and", "until"}) {
    for (int p : {2, 4, 8, 16, 32}) {
      Rng rng(7);
      RandomListOptions opts;
      opts.num_segments = kSize;
      opts.coverage = 0.1;
      std::map<std::string, SimilarityList> inputs;
      int64_t total_l = 0;
      for (int i = 0; i < p; ++i) {
        inputs[StrCat("p", i)] = GenerateRandomList(rng, opts);
        total_l += inputs[StrCat("p", i)].length();
      }
      FormulaPtr f = Chain(p, op);
      WallTimer timer;
      for (int r = 0; r < kReps; ++r) {
        auto result = EvaluateWithLists(*f, inputs);
        if (!result.ok()) {
          std::printf("error: %s\n", result.status().ToString().c_str());
          return 1;
        }
      }
      const double s = timer.ElapsedSeconds() / kReps;
      std::printf("%-6d %-8s %-14lld %-14.6f %.2f\n", p, op,
                  static_cast<long long>(total_l), s,
                  1e9 * s / (static_cast<double>(total_l) * p));
    }
  }
  std::printf(
      "\nns per l*p should stay roughly flat across p — the O(l*p) bound of\n"
      "section 3.1 (each operator pass is linear in the list lengths).\n");
  return 0;
}
