// Table 6 of the paper: performance of the two systems on  P1 UNTIL P2
// over randomly generated similarity tables. Paper-reported numbers
// (seconds, Sybase on SUN workstations, 1997):
//
//   Size     Direct   SQL-based
//   10000     1.46     42.14
//   50000     7.35     99.72
//   100000   14.97    134.63
//
// Expected reproduction: the *shape* — direct much faster than SQL, direct
// growing linearly with size — not the absolute values.

#include "htl/ast.h"
#include "perf_common.h"

int main() {
  using namespace htl;
  FormulaPtr f = MakeUntil(MakePredicate("p1", {}), MakePredicate("p2", {}));
  bench::BenchJson json("table6_until");
  return bench::RunPerfTable(
      "Table 6. Perf Results for P1 UNTIL P2", *f, {"p1", "p2"},
      {
          {10'000, "1.46", "42.14"},
          {50'000, "7.35", "99.72"},
          {100'000, "14.97", "134.63"},
      },
      /*reps=*/5, &json);
}
