// Ablation for the section 3.2 claim: collapsing the m rows of an
// existentially quantified similarity table is a modified m-way merge with
// complexity O(l log m) for total entry count l. Sweeps m at fixed total l.

#include <benchmark/benchmark.h>

#include "sim/list_ops.h"
#include "sim/table_ops.h"
#include "util/rng.h"
#include "workload/random_lists.h"

namespace htl {
namespace {

// m lists with total entry count ~kTotalEntries.
std::vector<SimilarityList> MakeRows(int64_t m) {
  constexpr int64_t kTotalCoveredIds = 1 << 18;
  std::vector<SimilarityList> rows;
  Rng rng(static_cast<uint64_t>(m) * 17 + 1);
  RandomListOptions opts;
  opts.num_segments = kTotalCoveredIds * 10 / m;
  opts.coverage = 0.1;
  for (int64_t i = 0; i < m; ++i) {
    rows.push_back(GenerateRandomList(rng, opts));
  }
  return rows;
}

void BM_MultiMaxRows(benchmark::State& state) {
  std::vector<SimilarityList> rows = MakeRows(state.range(0));
  int64_t total = 0;
  for (const auto& r : rows) total += r.length();
  for (auto _ : state) {
    std::vector<SimilarityList> copy = rows;
    benchmark::DoNotOptimize(MultiMax(std::move(copy)));
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
  state.counters["total_entries"] = static_cast<double>(total);
  state.SetComplexityN(state.range(0));
}
// Fixed total size, growing m: expect runtime ~ log m.
BENCHMARK(BM_MultiMaxRows)->RangeMultiplier(4)->Range(2, 512)->Complexity(benchmark::oLogN);

// CollapseExists over a table with m rows (one binding each).
void BM_CollapseExists(benchmark::State& state) {
  std::vector<SimilarityList> rows = MakeRows(state.range(0));
  SimilarityTable table({"x"}, {});
  for (size_t i = 0; i < rows.size(); ++i) {
    SimilarityTable::Row row;
    row.objects = {static_cast<ObjectId>(i + 1)};
    row.list = rows[i];
    table.AddRow(std::move(row));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CollapseExists(table, {"x"}));
  }
}
BENCHMARK(BM_CollapseExists)->RangeMultiplier(4)->Range(2, 512);

}  // namespace
}  // namespace htl

BENCHMARK_MAIN();
