// Ablation for the picture-retrieval substrate: atomic query cost vs
// segment count, object universe, and variable count — and the benefit of
// index-driven candidate pruning (an equality constraint narrows a
// variable's candidates through the attribute-value index; a bare
// present(x) admits every object).

#include <cstdio>

#include "picture/picture_system.h"
#include "util/string_util.h"
#include "util/rng.h"
#include "util/timer.h"
#include "workload/video_gen.h"

namespace {

using namespace htl;

AtomicFormula TypedAtomic(int vars) {
  AtomicFormula atomic;
  for (int i = 0; i < vars; ++i) {
    const std::string v = StrCat("x", i);
    Constraint c;
    c.kind = Constraint::Kind::kCompare;
    c.lhs = AttrTerm::AttrOf("type", v);
    c.op = CompareOp::kEq;
    c.rhs = AttrTerm::Literal(AttrValue("train"));  // ~1/4 of the universe.
    atomic.constraints.push_back(std::move(c));
    atomic.exists_vars.push_back(v);
  }
  return atomic;
}

AtomicFormula PresentAtomic(int vars) {
  AtomicFormula atomic;
  for (int i = 0; i < vars; ++i) {
    const std::string v = StrCat("x", i);
    Constraint c;
    c.kind = Constraint::Kind::kPresent;
    c.object_var = v;
    atomic.constraints.push_back(std::move(c));
    atomic.exists_vars.push_back(v);
  }
  return atomic;
}

}  // namespace

int main() {
  std::printf("picture-system atomic query cost (exists-quantified variables)\n");
  std::printf("%-10s %-9s %-6s %-12s %-14s %s\n", "segments", "objects", "vars",
              "constraint", "result rows", "ms/query");
  for (int64_t segments : {200, 800}) {
    for (int objects : {8, 16}) {
      Rng rng(42);
      VideoGenOptions opts;
      opts.levels = 2;
      opts.min_branching = static_cast<int>(segments);
      opts.max_branching = static_cast<int>(segments);
      opts.num_objects = objects;
      opts.object_density = 0.3;
      VideoTree video = GenerateVideo(rng, opts);
      PictureSystem ps(&video);

      for (int vars : {1, 2}) {
        struct Case {
          const char* name;
          AtomicFormula atomic;
        };
        Case cases[] = {{"type-eq", TypedAtomic(vars)}, {"present", PresentAtomic(vars)}};
        for (Case& c : cases) {
          constexpr int kReps = 5;
          WallTimer timer;
          int64_t rows = 0;
          for (int r = 0; r < kReps; ++r) {
            auto table = ps.Query(2, c.atomic);
            if (!table.ok()) {
              std::printf("error: %s\n", table.status().ToString().c_str());
              return 1;
            }
            rows = table.value().num_rows();
          }
          std::printf("%-10lld %-9d %-6d %-12s %-14lld %.3f\n",
                      static_cast<long long>(segments), objects, vars, c.name,
                      static_cast<long long>(rows),
                      1e3 * timer.ElapsedSeconds() / kReps);
        }
      }
    }
  }
  std::printf(
      "\n'type-eq' constraints prune candidates through the attribute-value index;\n"
      "bare 'present' admits the whole object universe per variable (the paper's\n"
      "picture system [27] relies on the same index-driven pruning).\n");
  return 0;
}
