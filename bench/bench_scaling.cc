// Ablation for the section 4.2 claim "the time taken by the direct method
// increases linearly with the size which is in confirmity with our
// complexity analysis": microbenchmarks of the direct list operators across
// input sizes. Run with --benchmark_* flags as usual.

#include <benchmark/benchmark.h>

#include "sim/list_ops.h"
#include "util/rng.h"
#include "workload/random_lists.h"

namespace htl {
namespace {

SimilarityList MakeList(int64_t size, uint64_t seed) {
  Rng rng(seed);
  RandomListOptions opts;
  opts.num_segments = size;
  opts.coverage = 0.1;
  return GenerateRandomList(rng, opts);
}

void BM_AndMerge(benchmark::State& state) {
  const int64_t size = state.range(0);
  SimilarityList a = MakeList(size, 1);
  SimilarityList b = MakeList(size, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AndMerge(a, b));
  }
  state.SetComplexityN(a.length() + b.length());
}
BENCHMARK(BM_AndMerge)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

void BM_UntilMerge(benchmark::State& state) {
  const int64_t size = state.range(0);
  SimilarityList g = MakeList(size, 3);
  SimilarityList h = MakeList(size, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(UntilMerge(g, h, 0.5));
  }
  state.SetComplexityN(g.length() + h.length());
}
BENCHMARK(BM_UntilMerge)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

void BM_Eventually(benchmark::State& state) {
  SimilarityList h = MakeList(state.range(0), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Eventually(h));
  }
  state.SetComplexityN(h.length());
}
BENCHMARK(BM_Eventually)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

void BM_NextShift(benchmark::State& state) {
  SimilarityList a = MakeList(state.range(0), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NextShift(a));
  }
  state.SetComplexityN(a.length());
}
BENCHMARK(BM_NextShift)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

}  // namespace
}  // namespace htl

BENCHMARK_MAIN();
