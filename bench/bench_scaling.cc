// Ablation for the section 4.2 claim "the time taken by the direct method
// increases linearly with the size which is in confirmity with our
// complexity analysis": microbenchmarks of the direct list operators across
// input sizes, plus a store-wide retrieval parallelism sweep written to
// BENCH_scaling.json. Run with --benchmark_* flags as usual.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "engine/retrieval.h"
#include "perf_common.h"
#include "sim/list_ops.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"
#include "workload/random_lists.h"
#include "workload/video_gen.h"

namespace htl {
namespace {

SimilarityList MakeList(int64_t size, uint64_t seed) {
  Rng rng(seed);
  RandomListOptions opts;
  opts.num_segments = size;
  opts.coverage = 0.1;
  return GenerateRandomList(rng, opts);
}

void BM_AndMerge(benchmark::State& state) {
  const int64_t size = state.range(0);
  SimilarityList a = MakeList(size, 1);
  SimilarityList b = MakeList(size, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(AndMerge(a, b));
  }
  state.SetComplexityN(a.length() + b.length());
}
BENCHMARK(BM_AndMerge)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

void BM_UntilMerge(benchmark::State& state) {
  const int64_t size = state.range(0);
  SimilarityList g = MakeList(size, 3);
  SimilarityList h = MakeList(size, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(UntilMerge(g, h, 0.5));
  }
  state.SetComplexityN(g.length() + h.length());
}
BENCHMARK(BM_UntilMerge)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

void BM_Eventually(benchmark::State& state) {
  SimilarityList h = MakeList(state.range(0), 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Eventually(h));
  }
  state.SetComplexityN(h.length());
}
BENCHMARK(BM_Eventually)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

void BM_NextShift(benchmark::State& state) {
  SimilarityList a = MakeList(state.range(0), 6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(NextShift(a));
  }
  state.SetComplexityN(a.length());
}
BENCHMARK(BM_NextShift)->Range(1 << 12, 1 << 20)->Complexity(benchmark::oN);

// Store-wide retrieval scaling across worker counts: the per-video fan-out
// of Retriever on a shared ThreadPool. The speedup ceiling is the physical
// core count — on a single-core host the honest expectation is ~1.0x (the
// sweep then mainly bounds the parallel driver's overhead).
void RunParallelismSweep(bench::BenchJson& json) {
  MetadataStore store;
  Rng rng(4242);
  VideoGenOptions opts;
  opts.levels = 2;
  opts.min_branching = 30;
  opts.max_branching = 50;
  for (int i = 0; i < 24; ++i) store.AddVideo(GenerateVideo(rng, opts));
  ThreadPool pool(ThreadPool::Options{8, 0});
  const char* query = "exists p (present(p)) until duration >= 90";
  std::printf("\nretrieval parallelism sweep: 24 videos, %d hardware thread(s)\n",
              ThreadPool::DefaultParallelism());
  std::printf("%-14s %-12s %s\n", "parallelism", "ms/query", "speedup vs p=1");
  double serial_ms = 0;
  for (int parallelism : {1, 2, 4, 8}) {
    QueryOptions options;
    options.parallelism = parallelism;
    options.thread_pool = &pool;
    Retriever retriever(&store, options);
    auto prepared = retriever.Prepare(query);
    HTL_CHECK(prepared.ok()) << prepared.status().ToString();
    HTL_CHECK(retriever.TopSegments(*prepared.value(), 2, 10).ok());  // Warm caches.
    constexpr int kReps = 20;
    WallTimer timer;
    for (int r = 0; r < kReps; ++r) {
      auto result = retriever.TopSegments(*prepared.value(), 2, 10);
      HTL_CHECK(result.ok()) << result.status().ToString();
    }
    const double ms = 1e3 * timer.ElapsedSeconds() / kReps;
    if (parallelism == 1) serial_ms = ms;
    const double speedup = ms > 0 ? serial_ms / ms : 0.0;
    std::printf("%-14d %-12.3f %.2fx\n", parallelism, ms, speedup);
    json.Add(StrCat("retrieval sweep p=", parallelism),
             {{"parallelism", static_cast<double>(parallelism)},
              {"videos", 24.0},
              {"ms_per_query", ms},
              {"speedup_vs_serial", speedup}});
  }
}

}  // namespace
}  // namespace htl

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  htl::bench::BenchJson json("scaling");
  htl::RunParallelismSweep(json);
  return 0;
}
