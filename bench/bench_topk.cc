// Microbenchmarks for top-k retrieval (section 1: "the top k video segments
// that have the highest similarity values ... will be retrieved") and for
// the SQL engine's join strategies, which drive the Tables 5/6 baseline.

#include <benchmark/benchmark.h>

#include "sim/topk.h"
#include "sql/bridge.h"
#include "sql/executor.h"
#include "util/rng.h"
#include "workload/random_lists.h"

namespace htl {
namespace {

SimilarityList MakeList(int64_t size, uint64_t seed) {
  Rng rng(seed);
  RandomListOptions opts;
  opts.num_segments = size;
  opts.coverage = 0.1;
  return GenerateRandomList(rng, opts);
}

void BM_TopKSegments(benchmark::State& state) {
  SimilarityList list = MakeList(1 << 18, 5);
  const int64_t k = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopKSegments(list, k));
  }
}
BENCHMARK(BM_TopKSegments)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_RankedEntries(benchmark::State& state) {
  SimilarityList list = MakeList(state.range(0), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RankedEntries(list));
  }
}
BENCHMARK(BM_RankedEntries)->Range(1 << 12, 1 << 18);

void BM_SqlHashJoin(benchmark::State& state) {
  sql::Catalog catalog;
  catalog.CreateOrReplace("a", sql::ExpandedTableFromList(MakeList(state.range(0), 11)));
  catalog.CreateOrReplace("b", sql::ExpandedTableFromList(MakeList(state.range(0), 12)));
  sql::Executor exec(&catalog);
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "SELECT a.id, a.act + b.act AS act FROM a JOIN b ON b.id = a.id");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlHashJoin)->Range(1 << 12, 1 << 16);

void BM_SqlRangeExpansion(benchmark::State& state) {
  sql::Catalog catalog;
  catalog.CreateOrReplace("iv", sql::TableFromList(MakeList(state.range(0), 13)));
  catalog.CreateOrReplace("seq", sql::MakeSeqTable(state.range(0)));
  sql::Executor exec(&catalog);
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "SELECT s.id, a.act FROM iv a JOIN seq s ON s.id >= a.beg AND s.id <= a.end");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SqlRangeExpansion)->Range(1 << 12, 1 << 16);

}  // namespace
}  // namespace htl

BENCHMARK_MAIN();
