# Empty compiler generated dependencies file for htl.
# This may be replaced when dependencies are built.
