file(REMOVE_RECURSE
  "libhtl.a"
)
