
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/cut_detection.cc" "src/CMakeFiles/htl.dir/analyzer/cut_detection.cc.o" "gcc" "src/CMakeFiles/htl.dir/analyzer/cut_detection.cc.o.d"
  "/root/repo/src/analyzer/pipeline.cc" "src/CMakeFiles/htl.dir/analyzer/pipeline.cc.o" "gcc" "src/CMakeFiles/htl.dir/analyzer/pipeline.cc.o.d"
  "/root/repo/src/analyzer/tracker.cc" "src/CMakeFiles/htl.dir/analyzer/tracker.cc.o" "gcc" "src/CMakeFiles/htl.dir/analyzer/tracker.cc.o.d"
  "/root/repo/src/engine/direct_engine.cc" "src/CMakeFiles/htl.dir/engine/direct_engine.cc.o" "gcc" "src/CMakeFiles/htl.dir/engine/direct_engine.cc.o.d"
  "/root/repo/src/engine/plan.cc" "src/CMakeFiles/htl.dir/engine/plan.cc.o" "gcc" "src/CMakeFiles/htl.dir/engine/plan.cc.o.d"
  "/root/repo/src/engine/reference_engine.cc" "src/CMakeFiles/htl.dir/engine/reference_engine.cc.o" "gcc" "src/CMakeFiles/htl.dir/engine/reference_engine.cc.o.d"
  "/root/repo/src/engine/retrieval.cc" "src/CMakeFiles/htl.dir/engine/retrieval.cc.o" "gcc" "src/CMakeFiles/htl.dir/engine/retrieval.cc.o.d"
  "/root/repo/src/htl/ast.cc" "src/CMakeFiles/htl.dir/htl/ast.cc.o" "gcc" "src/CMakeFiles/htl.dir/htl/ast.cc.o.d"
  "/root/repo/src/htl/binder.cc" "src/CMakeFiles/htl.dir/htl/binder.cc.o" "gcc" "src/CMakeFiles/htl.dir/htl/binder.cc.o.d"
  "/root/repo/src/htl/classifier.cc" "src/CMakeFiles/htl.dir/htl/classifier.cc.o" "gcc" "src/CMakeFiles/htl.dir/htl/classifier.cc.o.d"
  "/root/repo/src/htl/lexer.cc" "src/CMakeFiles/htl.dir/htl/lexer.cc.o" "gcc" "src/CMakeFiles/htl.dir/htl/lexer.cc.o.d"
  "/root/repo/src/htl/parser.cc" "src/CMakeFiles/htl.dir/htl/parser.cc.o" "gcc" "src/CMakeFiles/htl.dir/htl/parser.cc.o.d"
  "/root/repo/src/htl/rewriter.cc" "src/CMakeFiles/htl.dir/htl/rewriter.cc.o" "gcc" "src/CMakeFiles/htl.dir/htl/rewriter.cc.o.d"
  "/root/repo/src/model/predicate_fact.cc" "src/CMakeFiles/htl.dir/model/predicate_fact.cc.o" "gcc" "src/CMakeFiles/htl.dir/model/predicate_fact.cc.o.d"
  "/root/repo/src/model/segment.cc" "src/CMakeFiles/htl.dir/model/segment.cc.o" "gcc" "src/CMakeFiles/htl.dir/model/segment.cc.o.d"
  "/root/repo/src/model/value.cc" "src/CMakeFiles/htl.dir/model/value.cc.o" "gcc" "src/CMakeFiles/htl.dir/model/value.cc.o.d"
  "/root/repo/src/model/video.cc" "src/CMakeFiles/htl.dir/model/video.cc.o" "gcc" "src/CMakeFiles/htl.dir/model/video.cc.o.d"
  "/root/repo/src/model/video_builder.cc" "src/CMakeFiles/htl.dir/model/video_builder.cc.o" "gcc" "src/CMakeFiles/htl.dir/model/video_builder.cc.o.d"
  "/root/repo/src/picture/atomic.cc" "src/CMakeFiles/htl.dir/picture/atomic.cc.o" "gcc" "src/CMakeFiles/htl.dir/picture/atomic.cc.o.d"
  "/root/repo/src/picture/constraint_eval.cc" "src/CMakeFiles/htl.dir/picture/constraint_eval.cc.o" "gcc" "src/CMakeFiles/htl.dir/picture/constraint_eval.cc.o.d"
  "/root/repo/src/picture/index.cc" "src/CMakeFiles/htl.dir/picture/index.cc.o" "gcc" "src/CMakeFiles/htl.dir/picture/index.cc.o.d"
  "/root/repo/src/picture/picture_system.cc" "src/CMakeFiles/htl.dir/picture/picture_system.cc.o" "gcc" "src/CMakeFiles/htl.dir/picture/picture_system.cc.o.d"
  "/root/repo/src/picture/spatial.cc" "src/CMakeFiles/htl.dir/picture/spatial.cc.o" "gcc" "src/CMakeFiles/htl.dir/picture/spatial.cc.o.d"
  "/root/repo/src/sim/list_ops.cc" "src/CMakeFiles/htl.dir/sim/list_ops.cc.o" "gcc" "src/CMakeFiles/htl.dir/sim/list_ops.cc.o.d"
  "/root/repo/src/sim/sim_list.cc" "src/CMakeFiles/htl.dir/sim/sim_list.cc.o" "gcc" "src/CMakeFiles/htl.dir/sim/sim_list.cc.o.d"
  "/root/repo/src/sim/sim_table.cc" "src/CMakeFiles/htl.dir/sim/sim_table.cc.o" "gcc" "src/CMakeFiles/htl.dir/sim/sim_table.cc.o.d"
  "/root/repo/src/sim/similarity.cc" "src/CMakeFiles/htl.dir/sim/similarity.cc.o" "gcc" "src/CMakeFiles/htl.dir/sim/similarity.cc.o.d"
  "/root/repo/src/sim/table_ops.cc" "src/CMakeFiles/htl.dir/sim/table_ops.cc.o" "gcc" "src/CMakeFiles/htl.dir/sim/table_ops.cc.o.d"
  "/root/repo/src/sim/topk.cc" "src/CMakeFiles/htl.dir/sim/topk.cc.o" "gcc" "src/CMakeFiles/htl.dir/sim/topk.cc.o.d"
  "/root/repo/src/sim/value_range.cc" "src/CMakeFiles/htl.dir/sim/value_range.cc.o" "gcc" "src/CMakeFiles/htl.dir/sim/value_range.cc.o.d"
  "/root/repo/src/sim/value_table.cc" "src/CMakeFiles/htl.dir/sim/value_table.cc.o" "gcc" "src/CMakeFiles/htl.dir/sim/value_table.cc.o.d"
  "/root/repo/src/sql/ast.cc" "src/CMakeFiles/htl.dir/sql/ast.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/ast.cc.o.d"
  "/root/repo/src/sql/bridge.cc" "src/CMakeFiles/htl.dir/sql/bridge.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/bridge.cc.o.d"
  "/root/repo/src/sql/executor.cc" "src/CMakeFiles/htl.dir/sql/executor.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/executor.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/htl.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/htl.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/parser.cc.o.d"
  "/root/repo/src/sql/sql_system.cc" "src/CMakeFiles/htl.dir/sql/sql_system.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/sql_system.cc.o.d"
  "/root/repo/src/sql/table.cc" "src/CMakeFiles/htl.dir/sql/table.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/table.cc.o.d"
  "/root/repo/src/sql/translator.cc" "src/CMakeFiles/htl.dir/sql/translator.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/translator.cc.o.d"
  "/root/repo/src/sql/value.cc" "src/CMakeFiles/htl.dir/sql/value.cc.o" "gcc" "src/CMakeFiles/htl.dir/sql/value.cc.o.d"
  "/root/repo/src/storage/serialization.cc" "src/CMakeFiles/htl.dir/storage/serialization.cc.o" "gcc" "src/CMakeFiles/htl.dir/storage/serialization.cc.o.d"
  "/root/repo/src/util/interval.cc" "src/CMakeFiles/htl.dir/util/interval.cc.o" "gcc" "src/CMakeFiles/htl.dir/util/interval.cc.o.d"
  "/root/repo/src/util/rng.cc" "src/CMakeFiles/htl.dir/util/rng.cc.o" "gcc" "src/CMakeFiles/htl.dir/util/rng.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/htl.dir/util/status.cc.o" "gcc" "src/CMakeFiles/htl.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/htl.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/htl.dir/util/string_util.cc.o.d"
  "/root/repo/src/workload/casablanca.cc" "src/CMakeFiles/htl.dir/workload/casablanca.cc.o" "gcc" "src/CMakeFiles/htl.dir/workload/casablanca.cc.o.d"
  "/root/repo/src/workload/footage_gen.cc" "src/CMakeFiles/htl.dir/workload/footage_gen.cc.o" "gcc" "src/CMakeFiles/htl.dir/workload/footage_gen.cc.o.d"
  "/root/repo/src/workload/formula_gen.cc" "src/CMakeFiles/htl.dir/workload/formula_gen.cc.o" "gcc" "src/CMakeFiles/htl.dir/workload/formula_gen.cc.o.d"
  "/root/repo/src/workload/random_lists.cc" "src/CMakeFiles/htl.dir/workload/random_lists.cc.o" "gcc" "src/CMakeFiles/htl.dir/workload/random_lists.cc.o.d"
  "/root/repo/src/workload/video_gen.cc" "src/CMakeFiles/htl.dir/workload/video_gen.cc.o" "gcc" "src/CMakeFiles/htl.dir/workload/video_gen.cc.o.d"
  "/root/repo/src/workload/western.cc" "src/CMakeFiles/htl.dir/workload/western.cc.o" "gcc" "src/CMakeFiles/htl.dir/workload/western.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
