file(REMOVE_RECURSE
  "CMakeFiles/example_airplane_freeze.dir/airplane_freeze.cpp.o"
  "CMakeFiles/example_airplane_freeze.dir/airplane_freeze.cpp.o.d"
  "example_airplane_freeze"
  "example_airplane_freeze.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_airplane_freeze.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
