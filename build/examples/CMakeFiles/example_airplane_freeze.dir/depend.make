# Empty dependencies file for example_airplane_freeze.
# This may be replaced when dependencies are built.
