file(REMOVE_RECURSE
  "CMakeFiles/example_gulf_war_hierarchy.dir/gulf_war_hierarchy.cpp.o"
  "CMakeFiles/example_gulf_war_hierarchy.dir/gulf_war_hierarchy.cpp.o.d"
  "example_gulf_war_hierarchy"
  "example_gulf_war_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gulf_war_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
