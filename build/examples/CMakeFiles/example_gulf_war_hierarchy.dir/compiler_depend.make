# Empty compiler generated dependencies file for example_gulf_war_hierarchy.
# This may be replaced when dependencies are built.
