# Empty dependencies file for example_htl_shell.
# This may be replaced when dependencies are built.
