file(REMOVE_RECURSE
  "CMakeFiles/example_htl_shell.dir/htl_shell.cpp.o"
  "CMakeFiles/example_htl_shell.dir/htl_shell.cpp.o.d"
  "example_htl_shell"
  "example_htl_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_htl_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
