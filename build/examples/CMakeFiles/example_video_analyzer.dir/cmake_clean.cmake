file(REMOVE_RECURSE
  "CMakeFiles/example_video_analyzer.dir/video_analyzer.cpp.o"
  "CMakeFiles/example_video_analyzer.dir/video_analyzer.cpp.o.d"
  "example_video_analyzer"
  "example_video_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
