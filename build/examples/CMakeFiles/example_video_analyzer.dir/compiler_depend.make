# Empty compiler generated dependencies file for example_video_analyzer.
# This may be replaced when dependencies are built.
