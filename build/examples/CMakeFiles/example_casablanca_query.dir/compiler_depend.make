# Empty compiler generated dependencies file for example_casablanca_query.
# This may be replaced when dependencies are built.
