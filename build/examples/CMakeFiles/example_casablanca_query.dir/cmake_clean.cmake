file(REMOVE_RECURSE
  "CMakeFiles/example_casablanca_query.dir/casablanca_query.cpp.o"
  "CMakeFiles/example_casablanca_query.dir/casablanca_query.cpp.o.d"
  "example_casablanca_query"
  "example_casablanca_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_casablanca_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
