# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_tests[1]_include.cmake")
include("/root/repo/build/tests/model_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/htl_tests[1]_include.cmake")
include("/root/repo/build/tests/picture_tests[1]_include.cmake")
include("/root/repo/build/tests/engine_tests[1]_include.cmake")
include("/root/repo/build/tests/sql_tests[1]_include.cmake")
include("/root/repo/build/tests/workload_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
