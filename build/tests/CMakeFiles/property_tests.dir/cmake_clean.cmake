file(REMOVE_RECURSE
  "CMakeFiles/property_tests.dir/property/classifier_engine_contract_test.cc.o"
  "CMakeFiles/property_tests.dir/property/classifier_engine_contract_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/engines_agree_test.cc.o"
  "CMakeFiles/property_tests.dir/property/engines_agree_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/fuzzy_semantics_test.cc.o"
  "CMakeFiles/property_tests.dir/property/fuzzy_semantics_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/list_ops_property_test.cc.o"
  "CMakeFiles/property_tests.dir/property/list_ops_property_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/robustness_test.cc.o"
  "CMakeFiles/property_tests.dir/property/robustness_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/sql_parity_test.cc.o"
  "CMakeFiles/property_tests.dir/property/sql_parity_test.cc.o.d"
  "CMakeFiles/property_tests.dir/property/threshold_sweep_test.cc.o"
  "CMakeFiles/property_tests.dir/property/threshold_sweep_test.cc.o.d"
  "property_tests"
  "property_tests.pdb"
  "property_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/property_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
