
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/classifier_engine_contract_test.cc" "tests/CMakeFiles/property_tests.dir/property/classifier_engine_contract_test.cc.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/classifier_engine_contract_test.cc.o.d"
  "/root/repo/tests/property/engines_agree_test.cc" "tests/CMakeFiles/property_tests.dir/property/engines_agree_test.cc.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/engines_agree_test.cc.o.d"
  "/root/repo/tests/property/fuzzy_semantics_test.cc" "tests/CMakeFiles/property_tests.dir/property/fuzzy_semantics_test.cc.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/fuzzy_semantics_test.cc.o.d"
  "/root/repo/tests/property/list_ops_property_test.cc" "tests/CMakeFiles/property_tests.dir/property/list_ops_property_test.cc.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/list_ops_property_test.cc.o.d"
  "/root/repo/tests/property/robustness_test.cc" "tests/CMakeFiles/property_tests.dir/property/robustness_test.cc.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/robustness_test.cc.o.d"
  "/root/repo/tests/property/sql_parity_test.cc" "tests/CMakeFiles/property_tests.dir/property/sql_parity_test.cc.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/sql_parity_test.cc.o.d"
  "/root/repo/tests/property/threshold_sweep_test.cc" "tests/CMakeFiles/property_tests.dir/property/threshold_sweep_test.cc.o" "gcc" "tests/CMakeFiles/property_tests.dir/property/threshold_sweep_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
