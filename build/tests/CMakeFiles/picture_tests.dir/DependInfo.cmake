
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/picture/analyzer_test.cc" "tests/CMakeFiles/picture_tests.dir/picture/analyzer_test.cc.o" "gcc" "tests/CMakeFiles/picture_tests.dir/picture/analyzer_test.cc.o.d"
  "/root/repo/tests/picture/atomic_test.cc" "tests/CMakeFiles/picture_tests.dir/picture/atomic_test.cc.o" "gcc" "tests/CMakeFiles/picture_tests.dir/picture/atomic_test.cc.o.d"
  "/root/repo/tests/picture/constraint_eval_test.cc" "tests/CMakeFiles/picture_tests.dir/picture/constraint_eval_test.cc.o" "gcc" "tests/CMakeFiles/picture_tests.dir/picture/constraint_eval_test.cc.o.d"
  "/root/repo/tests/picture/picture_system_test.cc" "tests/CMakeFiles/picture_tests.dir/picture/picture_system_test.cc.o" "gcc" "tests/CMakeFiles/picture_tests.dir/picture/picture_system_test.cc.o.d"
  "/root/repo/tests/picture/spatial_test.cc" "tests/CMakeFiles/picture_tests.dir/picture/spatial_test.cc.o" "gcc" "tests/CMakeFiles/picture_tests.dir/picture/spatial_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
