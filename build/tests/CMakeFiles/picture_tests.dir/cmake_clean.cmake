file(REMOVE_RECURSE
  "CMakeFiles/picture_tests.dir/picture/analyzer_test.cc.o"
  "CMakeFiles/picture_tests.dir/picture/analyzer_test.cc.o.d"
  "CMakeFiles/picture_tests.dir/picture/atomic_test.cc.o"
  "CMakeFiles/picture_tests.dir/picture/atomic_test.cc.o.d"
  "CMakeFiles/picture_tests.dir/picture/constraint_eval_test.cc.o"
  "CMakeFiles/picture_tests.dir/picture/constraint_eval_test.cc.o.d"
  "CMakeFiles/picture_tests.dir/picture/picture_system_test.cc.o"
  "CMakeFiles/picture_tests.dir/picture/picture_system_test.cc.o.d"
  "CMakeFiles/picture_tests.dir/picture/spatial_test.cc.o"
  "CMakeFiles/picture_tests.dir/picture/spatial_test.cc.o.d"
  "picture_tests"
  "picture_tests.pdb"
  "picture_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/picture_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
