# Empty dependencies file for picture_tests.
# This may be replaced when dependencies are built.
