file(REMOVE_RECURSE
  "CMakeFiles/sql_tests.dir/sql/conjunctive_translation_test.cc.o"
  "CMakeFiles/sql_tests.dir/sql/conjunctive_translation_test.cc.o.d"
  "CMakeFiles/sql_tests.dir/sql/executor_test.cc.o"
  "CMakeFiles/sql_tests.dir/sql/executor_test.cc.o.d"
  "CMakeFiles/sql_tests.dir/sql/misc_test.cc.o"
  "CMakeFiles/sql_tests.dir/sql/misc_test.cc.o.d"
  "CMakeFiles/sql_tests.dir/sql/parser_test.cc.o"
  "CMakeFiles/sql_tests.dir/sql/parser_test.cc.o.d"
  "CMakeFiles/sql_tests.dir/sql/translator_test.cc.o"
  "CMakeFiles/sql_tests.dir/sql/translator_test.cc.o.d"
  "CMakeFiles/sql_tests.dir/sql/type2_translation_test.cc.o"
  "CMakeFiles/sql_tests.dir/sql/type2_translation_test.cc.o.d"
  "CMakeFiles/sql_tests.dir/sql/value_table_test.cc.o"
  "CMakeFiles/sql_tests.dir/sql/value_table_test.cc.o.d"
  "sql_tests"
  "sql_tests.pdb"
  "sql_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
