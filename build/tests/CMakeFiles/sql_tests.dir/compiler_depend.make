# Empty compiler generated dependencies file for sql_tests.
# This may be replaced when dependencies are built.
