
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sql/conjunctive_translation_test.cc" "tests/CMakeFiles/sql_tests.dir/sql/conjunctive_translation_test.cc.o" "gcc" "tests/CMakeFiles/sql_tests.dir/sql/conjunctive_translation_test.cc.o.d"
  "/root/repo/tests/sql/executor_test.cc" "tests/CMakeFiles/sql_tests.dir/sql/executor_test.cc.o" "gcc" "tests/CMakeFiles/sql_tests.dir/sql/executor_test.cc.o.d"
  "/root/repo/tests/sql/misc_test.cc" "tests/CMakeFiles/sql_tests.dir/sql/misc_test.cc.o" "gcc" "tests/CMakeFiles/sql_tests.dir/sql/misc_test.cc.o.d"
  "/root/repo/tests/sql/parser_test.cc" "tests/CMakeFiles/sql_tests.dir/sql/parser_test.cc.o" "gcc" "tests/CMakeFiles/sql_tests.dir/sql/parser_test.cc.o.d"
  "/root/repo/tests/sql/translator_test.cc" "tests/CMakeFiles/sql_tests.dir/sql/translator_test.cc.o" "gcc" "tests/CMakeFiles/sql_tests.dir/sql/translator_test.cc.o.d"
  "/root/repo/tests/sql/type2_translation_test.cc" "tests/CMakeFiles/sql_tests.dir/sql/type2_translation_test.cc.o" "gcc" "tests/CMakeFiles/sql_tests.dir/sql/type2_translation_test.cc.o.d"
  "/root/repo/tests/sql/value_table_test.cc" "tests/CMakeFiles/sql_tests.dir/sql/value_table_test.cc.o" "gcc" "tests/CMakeFiles/sql_tests.dir/sql/value_table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
