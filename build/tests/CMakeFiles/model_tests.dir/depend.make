# Empty dependencies file for model_tests.
# This may be replaced when dependencies are built.
