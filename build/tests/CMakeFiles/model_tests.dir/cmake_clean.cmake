file(REMOVE_RECURSE
  "CMakeFiles/model_tests.dir/model/model_test.cc.o"
  "CMakeFiles/model_tests.dir/model/model_test.cc.o.d"
  "model_tests"
  "model_tests.pdb"
  "model_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
