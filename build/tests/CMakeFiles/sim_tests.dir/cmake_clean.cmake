file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/list_ops_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/list_ops_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/sim_list_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/sim_list_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/table_ops_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/table_ops_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/topk_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/topk_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/value_range_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/value_range_test.cc.o.d"
  "CMakeFiles/sim_tests.dir/sim/value_table_test.cc.o"
  "CMakeFiles/sim_tests.dir/sim/value_table_test.cc.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
