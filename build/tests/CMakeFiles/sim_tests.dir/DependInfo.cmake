
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/list_ops_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/list_ops_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/list_ops_test.cc.o.d"
  "/root/repo/tests/sim/sim_list_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/sim_list_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/sim_list_test.cc.o.d"
  "/root/repo/tests/sim/table_ops_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/table_ops_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/table_ops_test.cc.o.d"
  "/root/repo/tests/sim/topk_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/topk_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/topk_test.cc.o.d"
  "/root/repo/tests/sim/value_range_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/value_range_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/value_range_test.cc.o.d"
  "/root/repo/tests/sim/value_table_test.cc" "tests/CMakeFiles/sim_tests.dir/sim/value_table_test.cc.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/value_table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
