file(REMOVE_RECURSE
  "CMakeFiles/workload_tests.dir/workload/western_test.cc.o"
  "CMakeFiles/workload_tests.dir/workload/western_test.cc.o.d"
  "CMakeFiles/workload_tests.dir/workload/workload_test.cc.o"
  "CMakeFiles/workload_tests.dir/workload/workload_test.cc.o.d"
  "workload_tests"
  "workload_tests.pdb"
  "workload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
