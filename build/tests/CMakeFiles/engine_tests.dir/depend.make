# Empty dependencies file for engine_tests.
# This may be replaced when dependencies are built.
