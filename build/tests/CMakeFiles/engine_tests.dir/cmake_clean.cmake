file(REMOVE_RECURSE
  "CMakeFiles/engine_tests.dir/engine/direct_engine_test.cc.o"
  "CMakeFiles/engine_tests.dir/engine/direct_engine_test.cc.o.d"
  "CMakeFiles/engine_tests.dir/engine/plan_test.cc.o"
  "CMakeFiles/engine_tests.dir/engine/plan_test.cc.o.d"
  "CMakeFiles/engine_tests.dir/engine/reference_engine_test.cc.o"
  "CMakeFiles/engine_tests.dir/engine/reference_engine_test.cc.o.d"
  "CMakeFiles/engine_tests.dir/engine/retrieval_test.cc.o"
  "CMakeFiles/engine_tests.dir/engine/retrieval_test.cc.o.d"
  "engine_tests"
  "engine_tests.pdb"
  "engine_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
