# Empty dependencies file for htl_tests.
# This may be replaced when dependencies are built.
