file(REMOVE_RECURSE
  "CMakeFiles/htl_tests.dir/htl/ast_test.cc.o"
  "CMakeFiles/htl_tests.dir/htl/ast_test.cc.o.d"
  "CMakeFiles/htl_tests.dir/htl/binder_test.cc.o"
  "CMakeFiles/htl_tests.dir/htl/binder_test.cc.o.d"
  "CMakeFiles/htl_tests.dir/htl/classifier_test.cc.o"
  "CMakeFiles/htl_tests.dir/htl/classifier_test.cc.o.d"
  "CMakeFiles/htl_tests.dir/htl/lexer_test.cc.o"
  "CMakeFiles/htl_tests.dir/htl/lexer_test.cc.o.d"
  "CMakeFiles/htl_tests.dir/htl/parser_test.cc.o"
  "CMakeFiles/htl_tests.dir/htl/parser_test.cc.o.d"
  "CMakeFiles/htl_tests.dir/htl/rewriter_test.cc.o"
  "CMakeFiles/htl_tests.dir/htl/rewriter_test.cc.o.d"
  "htl_tests"
  "htl_tests.pdb"
  "htl_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/htl_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
