
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/htl/ast_test.cc" "tests/CMakeFiles/htl_tests.dir/htl/ast_test.cc.o" "gcc" "tests/CMakeFiles/htl_tests.dir/htl/ast_test.cc.o.d"
  "/root/repo/tests/htl/binder_test.cc" "tests/CMakeFiles/htl_tests.dir/htl/binder_test.cc.o" "gcc" "tests/CMakeFiles/htl_tests.dir/htl/binder_test.cc.o.d"
  "/root/repo/tests/htl/classifier_test.cc" "tests/CMakeFiles/htl_tests.dir/htl/classifier_test.cc.o" "gcc" "tests/CMakeFiles/htl_tests.dir/htl/classifier_test.cc.o.d"
  "/root/repo/tests/htl/lexer_test.cc" "tests/CMakeFiles/htl_tests.dir/htl/lexer_test.cc.o" "gcc" "tests/CMakeFiles/htl_tests.dir/htl/lexer_test.cc.o.d"
  "/root/repo/tests/htl/parser_test.cc" "tests/CMakeFiles/htl_tests.dir/htl/parser_test.cc.o" "gcc" "tests/CMakeFiles/htl_tests.dir/htl/parser_test.cc.o.d"
  "/root/repo/tests/htl/rewriter_test.cc" "tests/CMakeFiles/htl_tests.dir/htl/rewriter_test.cc.o" "gcc" "tests/CMakeFiles/htl_tests.dir/htl/rewriter_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/htl.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
