file(REMOVE_RECURSE
  "CMakeFiles/util_tests.dir/util/interval_test.cc.o"
  "CMakeFiles/util_tests.dir/util/interval_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/rng_test.cc.o"
  "CMakeFiles/util_tests.dir/util/rng_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/serialization_test.cc.o"
  "CMakeFiles/util_tests.dir/util/serialization_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/status_test.cc.o"
  "CMakeFiles/util_tests.dir/util/status_test.cc.o.d"
  "CMakeFiles/util_tests.dir/util/string_util_test.cc.o"
  "CMakeFiles/util_tests.dir/util/string_util_test.cc.o.d"
  "util_tests"
  "util_tests.pdb"
  "util_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
