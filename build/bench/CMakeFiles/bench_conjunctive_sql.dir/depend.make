# Empty dependencies file for bench_conjunctive_sql.
# This may be replaced when dependencies are built.
