file(REMOVE_RECURSE
  "CMakeFiles/bench_conjunctive_sql.dir/bench_conjunctive_sql.cc.o"
  "CMakeFiles/bench_conjunctive_sql.dir/bench_conjunctive_sql.cc.o.d"
  "bench_conjunctive_sql"
  "bench_conjunctive_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_conjunctive_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
