file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_until.dir/bench_fig2_until.cc.o"
  "CMakeFiles/bench_fig2_until.dir/bench_fig2_until.cc.o.d"
  "bench_fig2_until"
  "bench_fig2_until.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_until.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
