file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_and.dir/bench_table5_and.cc.o"
  "CMakeFiles/bench_table5_and.dir/bench_table5_and.cc.o.d"
  "bench_table5_and"
  "bench_table5_and.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_and.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
