# Empty compiler generated dependencies file for bench_table5_and.
# This may be replaced when dependencies are built.
