file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_until.dir/bench_table6_until.cc.o"
  "CMakeFiles/bench_table6_until.dir/bench_table6_until.cc.o.d"
  "bench_table6_until"
  "bench_table6_until.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_until.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
