# Empty compiler generated dependencies file for bench_table6_until.
# This may be replaced when dependencies are built.
