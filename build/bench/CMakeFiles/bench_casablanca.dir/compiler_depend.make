# Empty compiler generated dependencies file for bench_casablanca.
# This may be replaced when dependencies are built.
