file(REMOVE_RECURSE
  "CMakeFiles/bench_casablanca.dir/bench_casablanca.cc.o"
  "CMakeFiles/bench_casablanca.dir/bench_casablanca.cc.o.d"
  "bench_casablanca"
  "bench_casablanca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_casablanca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
