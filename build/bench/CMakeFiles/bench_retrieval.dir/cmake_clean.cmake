file(REMOVE_RECURSE
  "CMakeFiles/bench_retrieval.dir/bench_retrieval.cc.o"
  "CMakeFiles/bench_retrieval.dir/bench_retrieval.cc.o.d"
  "bench_retrieval"
  "bench_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
