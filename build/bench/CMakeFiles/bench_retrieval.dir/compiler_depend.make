# Empty compiler generated dependencies file for bench_retrieval.
# This may be replaced when dependencies are built.
