# Empty dependencies file for bench_complexity.
# This may be replaced when dependencies are built.
