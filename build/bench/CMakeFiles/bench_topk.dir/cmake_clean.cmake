file(REMOVE_RECURSE
  "CMakeFiles/bench_topk.dir/bench_topk.cc.o"
  "CMakeFiles/bench_topk.dir/bench_topk.cc.o.d"
  "bench_topk"
  "bench_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
