# Empty dependencies file for bench_topk.
# This may be replaced when dependencies are built.
