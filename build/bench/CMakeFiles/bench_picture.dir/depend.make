# Empty dependencies file for bench_picture.
# This may be replaced when dependencies are built.
