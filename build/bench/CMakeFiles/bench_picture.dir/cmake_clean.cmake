file(REMOVE_RECURSE
  "CMakeFiles/bench_picture.dir/bench_picture.cc.o"
  "CMakeFiles/bench_picture.dir/bench_picture.cc.o.d"
  "bench_picture"
  "bench_picture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_picture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
