file(REMOVE_RECURSE
  "CMakeFiles/bench_analyzer.dir/bench_analyzer.cc.o"
  "CMakeFiles/bench_analyzer.dir/bench_analyzer.cc.o.d"
  "bench_analyzer"
  "bench_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
