file(REMOVE_RECURSE
  "CMakeFiles/bench_complex_formulas.dir/bench_complex_formulas.cc.o"
  "CMakeFiles/bench_complex_formulas.dir/bench_complex_formulas.cc.o.d"
  "bench_complex_formulas"
  "bench_complex_formulas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complex_formulas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
