# Empty compiler generated dependencies file for bench_complex_formulas.
# This may be replaced when dependencies are built.
