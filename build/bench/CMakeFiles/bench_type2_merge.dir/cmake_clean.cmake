file(REMOVE_RECURSE
  "CMakeFiles/bench_type2_merge.dir/bench_type2_merge.cc.o"
  "CMakeFiles/bench_type2_merge.dir/bench_type2_merge.cc.o.d"
  "bench_type2_merge"
  "bench_type2_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_type2_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
