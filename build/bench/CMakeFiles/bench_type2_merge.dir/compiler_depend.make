# Empty compiler generated dependencies file for bench_type2_merge.
# This may be replaced when dependencies are built.
