# Empty dependencies file for bench_levels.
# This may be replaced when dependencies are built.
