file(REMOVE_RECURSE
  "CMakeFiles/bench_levels.dir/bench_levels.cc.o"
  "CMakeFiles/bench_levels.dir/bench_levels.cc.o.d"
  "bench_levels"
  "bench_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
