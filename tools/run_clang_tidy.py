#!/usr/bin/env python3
"""Runs clang-tidy over src/ using the repo's .clang-tidy config.

Usage:
  tools/run_clang_tidy.py [--build-dir BUILD] [paths...]

Needs a build directory containing compile_commands.json (any configure of
this repo produces one; CMAKE_EXPORT_COMPILE_COMMANDS is always on). Files
default to every .cc under src/. Exits 0 when clean, 1 on findings, and 2
when no clang-tidy binary is available — callers that merely *gate* on tidy
(pre-commit hooks on boxes without LLVM) can treat 2 as "skipped".
"""

from __future__ import annotations

import argparse
import multiprocessing
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

TIDY_CANDIDATES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(22, 13, -1)]


def find_clang_tidy() -> str | None:
    for name in TIDY_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def find_build_dir(explicit: str | None) -> Path | None:
    if explicit:
        p = Path(explicit)
        return p if (p / "compile_commands.json").exists() else None
    candidates = [REPO_ROOT / "build"]
    candidates += sorted((REPO_ROOT / "build").glob("*")) if (REPO_ROOT / "build").is_dir() else []
    for c in candidates:
        if (c / "compile_commands.json").exists():
            return c
    return None


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", help="directory with compile_commands.json")
    parser.add_argument("-j", "--jobs", type=int,
                        default=multiprocessing.cpu_count())
    parser.add_argument("paths", nargs="*", type=Path)
    args = parser.parse_args(argv)

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy.py: no clang-tidy binary found (tried "
              f"{', '.join(TIDY_CANDIDATES[:2])}, ...); skipping", file=sys.stderr)
        return 2

    build_dir = find_build_dir(args.build_dir)
    if build_dir is None:
        print("run_clang_tidy.py: no compile_commands.json found; configure "
              "first (cmake --preset release)", file=sys.stderr)
        return 2

    files = [str(p) for p in args.paths] or \
        sorted(str(p) for p in (REPO_ROOT / "src").rglob("*.cc"))

    failed = False
    # Chunk the file list so long runs still stream progress.
    chunk = max(1, len(files) // max(1, args.jobs))
    procs = []
    for i in range(0, len(files), chunk):
        procs.append(subprocess.Popen(
            [tidy, "-p", str(build_dir), "--quiet", *files[i:i + chunk]],
            cwd=REPO_ROOT))
        while len(procs) >= args.jobs:
            failed |= procs.pop(0).wait() != 0
    for p in procs:
        failed |= p.wait() != 0
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
