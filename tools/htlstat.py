#!/usr/bin/env python3
"""htlstat — live top-style view of a running HTL query server.

Polls the server's admin endpoint (the second, shed-exempt listener) over
the native HTLQ admin protocol and renders health, throughput, per-stage
latency percentiles, and pool saturation. Stdlib only; no server-side
support beyond the admin verbs.

Usage:
    tools/htlstat.py --port 8471               # live view, 2s refresh
    tools/htlstat.py --port 8471 --interval 1
    tools/htlstat.py --port 8471 --once        # one scrape, plain output
    tools/htlstat.py --port 8471 --slowlog     # dump the slowlog and exit

QPS is the delta of the request-latency histogram's count between two
scrapes; percentiles are estimated from histogram buckets by linear
interpolation inside the bucket, so they are as coarse as the bucket
layout (exponential, base 2).
"""

from __future__ import annotations

import argparse
import json
import socket
import struct
import sys
import time

FRAME_MAGIC = 0x514C5448  # "HTLQ" little-endian.
PROTOCOL_VERSION = 1

VERB_METRICS_TEXT = 0
VERB_METRICS_JSON = 1
VERB_HEALTHZ = 2
VERB_SLOWLOG = 3
VERB_TRACE = 4

WIRE_STATUS_NAMES = {
    0: "ok", 1: "invalid-argument", 2: "parse-error", 3: "deadline-exceeded",
    4: "cancelled", 5: "resource-exhausted", 6: "overloaded",
    7: "unimplemented", 8: "internal",
}

STAGE_HISTOGRAMS = [
    ("total", "net.request.latency_us"),
    ("decode", "net.request.decode_us"),
    ("execute", "net.request.execute_us"),
    ("encode", "net.request.encode_us"),
]


class AdminError(RuntimeError):
    pass


def admin_call(host: str, port: int, verb: int, arg: int = 0,
               timeout: float = 5.0) -> str:
    """One admin request over a fresh connection; returns the response body."""
    body = struct.pack("<BBq", PROTOCOL_VERSION, verb, arg)
    frame = struct.pack("<II", FRAME_MAGIC, len(body)) + body
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.sendall(frame)
        header = recv_exact(sock, 8)
        magic, length = struct.unpack("<II", header)
        if magic != FRAME_MAGIC:
            raise AdminError(f"bad frame magic 0x{magic:08x}")
        if length > 64 * 1024 * 1024:
            raise AdminError(f"response frame of {length} bytes is implausible")
        payload = recv_exact(sock, length)
    if len(payload) < 2:
        raise AdminError("truncated admin response")
    version, status = payload[0], payload[1]
    if version != PROTOCOL_VERSION:
        raise AdminError(f"server speaks protocol v{version}, not v{PROTOCOL_VERSION}")
    (strlen,) = struct.unpack_from("<I", payload, 2)
    text = payload[6:6 + strlen].decode("utf-8", errors="replace")
    if status != 0:
        name = WIRE_STATUS_NAMES.get(status, str(status))
        raise AdminError(f"admin verb {verb} failed ({name}): {text}")
    return text


def recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n > 0:
        chunk = sock.recv(min(n, 1 << 16))
        if not chunk:
            raise AdminError("connection closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def percentile(hist: dict, q: float) -> float | None:
    """Estimate the q-th percentile (0..1) of a bucketed histogram in us.

    Buckets are per-bucket counts, bounds ascending, last bucket = overflow.
    Interpolates linearly inside the winning bucket; the overflow bucket
    reports the last bound (a floor, rendered with a '>' by callers).
    """
    count = hist.get("count", 0)
    if count <= 0:
        return None
    bounds = hist.get("bounds", [])
    buckets = hist.get("buckets", [])
    target = q * count
    seen = 0.0
    for i, n in enumerate(buckets):
        if seen + n >= target and n > 0:
            lo = bounds[i - 1] if i > 0 else 0
            hi = bounds[i] if i < len(bounds) else None
            if hi is None:
                return float(lo)  # Overflow bucket: the bound is a floor.
            frac = (target - seen) / n
            return lo + frac * (hi - lo)
        seen += n
    return float(bounds[-1]) if bounds else None


def fmt_us(us: float | None, overflow: bool = False) -> str:
    if us is None:
        return "-"
    prefix = ">" if overflow else ""
    if us >= 1e6:
        return f"{prefix}{us / 1e6:.2f}s"
    if us >= 1e3:
        return f"{prefix}{us / 1e3:.1f}ms"
    return f"{prefix}{us:.0f}us"


def is_overflow(hist: dict, q: float) -> bool:
    """True when the q-th percentile lands in the overflow bucket."""
    count = hist.get("count", 0)
    buckets = hist.get("buckets", [])
    if count <= 0 or not buckets:
        return False
    below = sum(buckets[:-1])
    return q * count > below


def scrape(host: str, port: int) -> tuple[dict, dict, float]:
    now = time.monotonic()
    metrics = json.loads(admin_call(host, port, VERB_METRICS_JSON))
    healthz = json.loads(admin_call(host, port, VERB_HEALTHZ))
    return metrics, healthz, now


def render(metrics: dict, healthz: dict, prev: tuple[dict, float] | None,
           now: float) -> str:
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})

    total = histograms.get("net.request.latency_us", {})
    requests = total.get("count", 0)
    qps = None
    if prev is not None:
        prev_metrics, prev_now = prev
        prev_count = (prev_metrics.get("histograms", {})
                      .get("net.request.latency_us", {}).get("count", 0))
        elapsed = now - prev_now
        if elapsed > 0:
            qps = (requests - prev_count) / elapsed

    state = healthz.get("state", "?")
    healthy = healthz.get("healthy", False)
    lines = []
    lines.append(
        f"htlstat  query :{healthz.get('query_port', '?')}"
        f"  admin :{healthz.get('admin_port', '?')}"
        f"  uptime {healthz.get('uptime_s', '?')}s")
    health_word = "healthy" if healthy else "UNHEALTHY"
    lines.append(
        f"state {state} ({health_word})"
        f"  in-flight {healthz.get('in_flight', '?')}"
        f"/{healthz.get('hard_watermark', '?')}"
        f"  stalled {healthz.get('stalled_sessions', 0)}"
        f"  wide-events {healthz.get('wide_events', 0)}")
    qps_text = f"{qps:.1f}" if qps is not None else "-"
    lines.append(
        f"requests {requests}  qps {qps_text}"
        f"  ok {counters.get('net.responses_ok', 0)}"
        f"  err {counters.get('net.responses_error', 0)}"
        f"  shed {counters.get('net.rejected_overload', 0)}"
        f"  degraded {counters.get('net.shed_degraded', 0)}"
        f"  frame-errs {counters.get('net.frame_errors', 0)}")
    lines.append(
        f"pool queue {gauges.get('pool.queue_depth', 0)}"
        f"  busy {gauges.get('pool.workers_busy', 0)}"
        f"  admin reqs {counters.get('net.admin.requests', 0)}"
        f"  admin errs {counters.get('net.admin.errors', 0)}"
        f"  watchdog stalls {counters.get('net.watchdog.stalls', 0)}")
    lines.append("")
    lines.append(f"{'stage':<10} {'count':>10} {'p50':>10} {'p99':>10}")
    for label, name in STAGE_HISTOGRAMS:
        hist = histograms.get(name, {})
        p50 = percentile(hist, 0.50)
        p99 = percentile(hist, 0.99)
        lines.append(
            f"{label:<10} {hist.get('count', 0):>10}"
            f" {fmt_us(p50, is_overflow(hist, 0.50)):>10}"
            f" {fmt_us(p99, is_overflow(hist, 0.99)):>10}")
    wait = histograms.get("pool.task_wait_us", {})
    if wait:
        lines.append(
            f"{'pool-wait':<10} {wait.get('count', 0):>10}"
            f" {fmt_us(percentile(wait, 0.50)):>10}"
            f" {fmt_us(percentile(wait, 0.99)):>10}")
    return "\n".join(lines)


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], prog="htlstat")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True,
                        help="admin port (QueryServer::admin_port())")
    parser.add_argument("--interval", type=float, default=2.0,
                        help="refresh interval in seconds (default 2)")
    parser.add_argument("--once", action="store_true",
                        help="scrape once, print, exit")
    parser.add_argument("--slowlog", action="store_true",
                        help="dump the slowlog JSON and exit")
    parser.add_argument("--trace", type=int, metavar="N", default=None,
                        help="export retained profile N (0 = newest) as "
                             "Chrome trace JSON on stdout and exit")
    args = parser.parse_args(argv)

    try:
        if args.slowlog:
            print(admin_call(args.host, args.port, VERB_SLOWLOG))
            return 0
        if args.trace is not None:
            print(admin_call(args.host, args.port, VERB_TRACE, args.trace))
            return 0

        prev: tuple[dict, float] | None = None
        while True:
            metrics, healthz, now = scrape(args.host, args.port)
            view = render(metrics, healthz, prev, now)
            if args.once:
                print(view)
                return 0
            sys.stdout.write("\x1b[2J\x1b[H" + view + "\n")
            sys.stdout.flush()
            prev = (metrics, now)
            time.sleep(max(args.interval, 0.1))
    except AdminError as err:
        print(f"htlstat: {err}", file=sys.stderr)
        return 1
    except (ConnectionError, socket.timeout, OSError) as err:
        print(f"htlstat: cannot reach admin endpoint: {err}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
