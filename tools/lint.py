#!/usr/bin/env python3
"""House-rules linter for the htl codebase (run in CI; see CONTRIBUTING.md).

Checks, over src/ by default:

  no-exceptions     `throw` / `try` / `catch` are forbidden in src/: fallible
                    code returns htl::Status / htl::Result<T> (status.h).
  no-using-namespace-in-header
                    `using namespace` in a header leaks into every includer.
  header-guard      Headers open with `#ifndef HTL_<PATH>_H_` derived from the
                    path relative to src/ (e.g. src/sim/sim_list.h ->
                    HTL_SIM_SIM_LIST_H_), matching #define, and a trailing
                    `#endif  // HTL_<PATH>_H_`.
  include-order     First include of foo.cc is its own header "foo.h"; the
                    remaining includes form blank-line-separated blocks, each
                    internally sorted, with <system> blocks before "project"
                    blocks.
  no-void-status-discard
                    `(void)call(...)` is forbidden: discarding a call result
                    defeats [[nodiscard]] Status/Result. Use .IgnoreError()
                    with a comment instead. (`(void)param;` for unused
                    parameters stays legal.)
  no-throwing-parse `std::stoi` / `std::stoll` / `std::stod` & friends throw;
                    use htl::ParseInt32/ParseInt64/ParseDouble (util/parse.h).
  exec-context-polling
                    Engine-loop files (src/engine/*.cc and src/sql/executor.cc)
                    that contain loops must reference the execution context
                    (ExecContext / HTL_CHECK_EXEC / ChargeRows / ...): a loop
                    over segments or rows that never polls it cannot honor
                    deadlines or cancellation (CONTRIBUTING.md ground rule).
                    File-scoped: suppress with `// htl-lint:
                    allow(exec-context-polling)` anywhere in the file.
  no-bare-timer     Hot-path kernel files (src/sim/ and src/engine/) must not
                    time work with a bare WallTimer (util/timer.h): per-query
                    timing belongs to the sanctioned span macro HTL_OBS_SPAN /
                    TraceSpan (src/obs/trace.h), which is free when disarmed
                    and lands in the EXPLAIN profile when armed.
  obs-operator-span Hot-path kernel files (the operator kernels in src/sim/,
                    the engines in src/engine/, and src/sql/executor.cc) must
                    reference the observability layer (HTL_OBS_SPAN /
                    HTL_OBS_COUNT / TraceSpan / obs::): a kernel that never
                    counts or traces is invisible to EXPLAIN (CONTRIBUTING.md
                    ground rule). File-scoped: suppress with `// htl-lint:
                    allow(obs-operator-span)` anywhere in the file.
  no-raw-thread     `std::thread` / `std::jthread` are forbidden in src/
                    outside src/util/thread_pool.{h,cc}: ad-hoc threads skip
                    the pool's bounded queue, cancellation fan-out, and TSan
                    coverage. Run work on the shared ThreadPool (ParallelFor /
                    Schedule) instead (CONTRIBUTING.md ground rule).
  cache-obs         Cache machinery files (CACHE_OBS_FILES: the sharded LRU
                    and its clients in src/cache/) must reference the
                    observability layer: a cache whose hits/misses/evictions
                    never reach obs::MetricsRegistry cannot be sized or
                    debugged in production (CONTRIBUTING.md ground rule). New
                    cache clients belong on the list. File-scoped: suppress
                    with `// htl-lint: allow(cache-obs)` anywhere in the file.

A finding can be locally suppressed with `// htl-lint: allow(<rule>)` on the
same line. Exit status is 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

HEADER_EXTS = {".h"}
SOURCE_EXTS = {".h", ".cc", ".cpp"}

ALLOW_RE = re.compile(r"//\s*htl-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment/string-literal contents with spaces, keeping offsets.

    Newlines are preserved so line numbers survive. String and char literals
    become `""` / `''`; comments become whitespace.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * max(0, j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT) if self.path.is_absolute() else self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


EXCEPTION_RE = re.compile(r"(?<![\w])(?:throw|try|catch)(?![\w])")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
VOID_DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][\w:.\->]*\s*\(")
THROWING_PARSE_RE = re.compile(r"\bstd\s*::\s*sto(?:i|l|ll|ul|ull|f|d|ld)\b")
RAW_THREAD_RE = re.compile(r"\bstd\s*::\s*(?:jthread|thread)\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')

# The one sanctioned home for raw threads: the pool's own implementation.
RAW_THREAD_EXEMPT = {
    "src/util/thread_pool.h",
    "src/util/thread_pool.cc",
}


def is_raw_thread_exempt(path: Path) -> bool:
    try:
        rel = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return False
    return rel in RAW_THREAD_EXEMPT


def expected_guard(path: Path) -> str:
    rel = path.relative_to(REPO_ROOT / "src")
    token = re.sub(r"[^A-Za-z0-9]", "_", str(rel).upper())
    return f"HTL_{token}_"


def check_line_rules(path: Path, raw_lines: list[str], code_lines: list[str],
                     findings: list[Finding]) -> None:
    is_header = path.suffix in HEADER_EXTS
    for idx, code in enumerate(code_lines):
        lineno = idx + 1
        allows = allowed_rules(raw_lines[idx])

        if EXCEPTION_RE.search(code) and "no-exceptions" not in allows:
            findings.append(Finding(
                path, lineno, "no-exceptions",
                "throw/try/catch is forbidden in src/; return htl::Status instead"))
        if is_header and USING_NAMESPACE_RE.search(code) and \
                "no-using-namespace-in-header" not in allows:
            findings.append(Finding(
                path, lineno, "no-using-namespace-in-header",
                "`using namespace` in a header pollutes every includer"))
        if VOID_DISCARD_RE.search(code) and "no-void-status-discard" not in allows:
            findings.append(Finding(
                path, lineno, "no-void-status-discard",
                "discarding a call with (void) defeats [[nodiscard]]; "
                "use .IgnoreError() or handle the result"))
        if THROWING_PARSE_RE.search(code) and "no-throwing-parse" not in allows:
            findings.append(Finding(
                path, lineno, "no-throwing-parse",
                "std::sto* throws on overflow; use htl::Parse* (util/parse.h)"))
        if RAW_THREAD_RE.search(code) and "no-raw-thread" not in allows and \
                not is_raw_thread_exempt(path):
            findings.append(Finding(
                path, lineno, "no-raw-thread",
                "raw std::thread/std::jthread is forbidden outside "
                "src/util/thread_pool; run work on the shared ThreadPool "
                "(ParallelFor / Schedule) so it gets the bounded queue, "
                "cancellation fan-out, and TSan coverage"))


def check_header_guard(path: Path, raw_lines: list[str],
                       findings: list[Finding]) -> None:
    guard = expected_guard(path)
    text_lines = [l.strip() for l in raw_lines]
    try:
        ifndef_idx = next(i for i, l in enumerate(text_lines) if l.startswith("#ifndef"))
    except StopIteration:
        findings.append(Finding(path, 1, "header-guard",
                                f"missing header guard (expected {guard})"))
        return
    if text_lines[ifndef_idx] != f"#ifndef {guard}":
        findings.append(Finding(path, ifndef_idx + 1, "header-guard",
                                f"guard should be {guard}"))
        return
    if ifndef_idx + 1 >= len(text_lines) or \
            text_lines[ifndef_idx + 1] != f"#define {guard}":
        findings.append(Finding(path, ifndef_idx + 2, "header-guard",
                                f"#define {guard} must follow the #ifndef"))
    last_nonempty = next((l for l in reversed(text_lines) if l), "")
    if last_nonempty != f"#endif  // {guard}":
        findings.append(Finding(path, len(text_lines), "header-guard",
                                f"file must end with `#endif  // {guard}`"))


def check_include_order(path: Path, raw_lines: list[str],
                        findings: list[Finding]) -> None:
    includes = []  # (lineno, token) with token like <x> or "y"
    for idx, line in enumerate(raw_lines):
        m = INCLUDE_RE.match(line)
        if m:
            includes.append((idx + 1, m.group(1)))
    if not includes:
        return

    start = 0
    if path.suffix != ".h":
        own = f'"{path.parent.name}/{path.stem}.h"'
        if (REPO_ROOT / "src" / path.parent.name / f"{path.stem}.h").exists():
            first_line, first_tok = includes[0]
            if first_tok == own:
                start = 1
            else:
                findings.append(Finding(
                    path, first_line, "include-order",
                    f"first include of a .cc must be its own header {own}"))

    # Blocks are maximal runs of includes on consecutive lines.
    blocks: list[list[tuple[int, str]]] = []
    for lineno, tok in includes[start:]:
        if blocks and lineno == blocks[-1][-1][0] + 1:
            blocks[-1].append((lineno, tok))
        else:
            blocks.append([(lineno, tok)])

    seen_project_block = False
    for block in blocks:
        kinds = {tok[0] for _, tok in block}
        if kinds == {"<"}:
            if seen_project_block and "include-order" not in \
                    allowed_rules(raw_lines[block[0][0] - 1]):
                findings.append(Finding(
                    path, block[0][0], "include-order",
                    "<system> include block after a \"project\" block"))
        elif kinds == {'"'}:
            seen_project_block = True
        else:
            findings.append(Finding(
                path, block[0][0], "include-order",
                "mixed <system> and \"project\" includes in one block"))
        toks = [tok for _, tok in block]
        if toks != sorted(toks):
            findings.append(Finding(
                path, block[0][0], "include-order",
                "includes within a block must be sorted alphabetically"))


BARE_TIMER_RE = re.compile(r"\bWallTimer\b|#\s*include\s+\"util/timer\.h\"")


def is_kernel_path(path: Path) -> bool:
    try:
        rel = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return False
    return rel.startswith("src/sim/") or rel.startswith("src/engine/")


def check_no_bare_timer(path: Path, raw_lines: list[str], code_lines: list[str],
                        findings: list[Finding]) -> None:
    if not is_kernel_path(path):
        return
    for idx, code in enumerate(code_lines):
        # The include is stripped to whitespace in `code`; test the raw line
        # for it and the code line for the identifier.
        if (BARE_TIMER_RE.search(code) or BARE_TIMER_RE.search(raw_lines[idx])) \
                and "no-bare-timer" not in allowed_rules(raw_lines[idx]):
            findings.append(Finding(
                path, idx + 1, "no-bare-timer",
                "hot-path kernels must not time work with a bare WallTimer; "
                "use HTL_OBS_SPAN / TraceSpan (src/obs/trace.h) so the timing "
                "lands in the EXPLAIN profile"))


# The designated hot-path kernel files: the operator kernels, the engines'
# evaluators, and the SQL executor. New kernel files belong on this list
# (CONTRIBUTING.md ground rule).
OBS_KERNEL_FILES = {
    "src/engine/direct_engine.cc",
    "src/engine/retrieval.cc",
    "src/sim/list_ops.cc",
    "src/sim/table_ops.cc",
    "src/sql/executor.cc",
}
OBS_REF_RE = re.compile(r"\b(?:HTL_OBS_SPAN|HTL_OBS_COUNT|TraceSpan)\b|\bobs\s*::")


def check_obs_operator_span(path: Path, raw_lines: list[str], code: str,
                            findings: list[Finding]) -> None:
    try:
        rel = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return
    if rel not in OBS_KERNEL_FILES:
        return
    if any("obs-operator-span" in allowed_rules(l) for l in raw_lines):
        return
    if not OBS_REF_RE.search(code):
        findings.append(Finding(
            path, 1, "obs-operator-span",
            "hot-path kernel file never references the observability layer; "
            "operators must count (HTL_OBS_COUNT) and trace (HTL_OBS_SPAN) "
            "their work, see CONTRIBUTING.md"))


# The cache substrate and every cache client: each must feed the metrics
# registry (hit/miss/fill/eviction counters) so deployed caches are
# observable. New cache clients belong on this list (CONTRIBUTING.md).
CACHE_OBS_FILES = {
    "src/cache/sharded_cache.h",
    "src/cache/sim_list_cache.cc",
}


def check_cache_obs(path: Path, raw_lines: list[str], code: str,
                    findings: list[Finding]) -> None:
    try:
        rel = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return
    if rel not in CACHE_OBS_FILES:
        return
    if any("cache-obs" in allowed_rules(l) for l in raw_lines):
        return
    if not OBS_REF_RE.search(code):
        findings.append(Finding(
            path, 1, "cache-obs",
            "cache machinery never references the observability layer; "
            "hit/miss/fill/eviction counters must reach obs::MetricsRegistry, "
            "see CONTRIBUTING.md"))


LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
EXEC_REF_RE = re.compile(
    r"\b(?:ExecContext|DepthScope|HTL_CHECK_EXEC|ChargeRows|ChargeTable|exec_)\b")


def is_engine_loop_file(path: Path) -> bool:
    if path.suffix != ".cc":
        return False
    try:
        rel = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return False
    return rel.startswith("src/engine/") or rel == "src/sql/executor.cc"


def check_exec_context_polling(path: Path, raw_lines: list[str], code: str,
                               findings: list[Finding]) -> None:
    if not is_engine_loop_file(path):
        return
    if any("exec-context-polling" in allowed_rules(l) for l in raw_lines):
        return
    if LOOP_RE.search(code) and not EXEC_REF_RE.search(code):
        findings.append(Finding(
            path, 1, "exec-context-polling",
            "engine-loop file never references the execution context; loops "
            "over segments/rows must poll it (HTL_CHECK_EXEC / ChargeRows), "
            "see CONTRIBUTING.md"))


def lint_file(path: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    findings: list[Finding] = []
    check_line_rules(path, raw_lines, code_lines, findings)
    if path.suffix in HEADER_EXTS:
        check_header_guard(path, raw_lines, findings)
    check_include_order(path, raw_lines, findings)
    check_exec_context_polling(path, raw_lines, code, findings)
    check_no_bare_timer(path, raw_lines, code_lines, findings)
    check_obs_operator_span(path, raw_lines, code, findings)
    check_cache_obs(path, raw_lines, code, findings)
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/)")
    args = parser.parse_args(argv)

    roots = args.paths or [REPO_ROOT / "src"]
    files: list[Path] = []
    for root in roots:
        root = root.resolve()
        if root.is_dir():
            files.extend(sorted(p for p in root.rglob("*")
                                if p.suffix in SOURCE_EXTS))
        elif root.suffix in SOURCE_EXTS:
            files.append(root)

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))

    for finding in findings:
        print(finding)
    print(f"lint.py: {len(files)} files checked, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
