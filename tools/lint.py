#!/usr/bin/env python3
"""House-rules linter for the htl codebase (run in CI; see CONTRIBUTING.md).

Checks src/, bench/, and examples/ by default. src/ gets the full rule set;
bench/ and examples/ (and any file outside src/) get the portable subset
(no-exceptions, no-throwing-parse, no-raw-thread, no-raw-mutex,
no-raw-socket) — the rules whose rationale is about runtime behavior, not
src/ layout conventions.

  no-exceptions     `throw` / `try` / `catch` are forbidden in src/: fallible
                    code returns htl::Status / htl::Result<T> (status.h).
  no-using-namespace-in-header
                    `using namespace` in a header leaks into every includer.
  header-guard      Headers open with `#ifndef HTL_<PATH>_H_` derived from the
                    path relative to src/ (e.g. src/sim/sim_list.h ->
                    HTL_SIM_SIM_LIST_H_), matching #define, and a trailing
                    `#endif  // HTL_<PATH>_H_`.
  include-order     First include of foo.cc is its own header "foo.h"; the
                    remaining includes form blank-line-separated blocks, each
                    internally sorted, with <system> blocks before "project"
                    blocks.
  no-void-status-discard
                    `(void)call(...)` is forbidden: discarding a call result
                    defeats [[nodiscard]] Status/Result. Use .IgnoreError()
                    with a comment instead. (`(void)param;` for unused
                    parameters stays legal.)
  no-throwing-parse `std::stoi` / `std::stoll` / `std::stod` & friends throw;
                    use htl::ParseInt32/ParseInt64/ParseDouble (util/parse.h).
  exec-context-polling
                    Engine-loop files (src/engine/*.cc and src/sql/executor.cc)
                    that contain loops must reference the execution context
                    (ExecContext / HTL_CHECK_EXEC / ChargeRows / ...): a loop
                    over segments or rows that never polls it cannot honor
                    deadlines or cancellation (CONTRIBUTING.md ground rule).
                    File-scoped: suppress with `// htl-lint:
                    allow(exec-context-polling)` anywhere in the file.
  no-bare-timer     Hot-path kernel files (src/sim/ and src/engine/) must not
                    time work with a bare WallTimer (util/timer.h): per-query
                    timing belongs to the sanctioned span macro HTL_OBS_SPAN /
                    TraceSpan (src/obs/trace.h), which is free when disarmed
                    and lands in the EXPLAIN profile when armed.
  obs-operator-span Hot-path kernel files (the operator kernels in src/sim/,
                    the engines in src/engine/, and src/sql/executor.cc) must
                    reference the observability layer (HTL_OBS_SPAN /
                    HTL_OBS_COUNT / TraceSpan / obs::): a kernel that never
                    counts or traces is invisible to EXPLAIN (CONTRIBUTING.md
                    ground rule). File-scoped: suppress with `// htl-lint:
                    allow(obs-operator-span)` anywhere in the file.
  no-raw-thread     `std::thread` / `std::jthread` are forbidden in src/
                    outside src/util/thread_pool.{h,cc}: ad-hoc threads skip
                    the pool's bounded queue, cancellation fan-out, and TSan
                    coverage. Run work on the shared ThreadPool (ParallelFor /
                    Schedule) instead (CONTRIBUTING.md ground rule).
  no-raw-mutex      `std::mutex` / `std::condition_variable` / the std lock
                    adapters are forbidden outside src/util/mutex.h: shared
                    state synchronizes through the annotated htl::Mutex /
                    htl::MutexLock / htl::CondVar wrappers so Clang Thread
                    Safety Analysis (the `tsa` preset; DESIGN.md "Lock
                    discipline") can prove the lock discipline. A raw
                    std::mutex is invisible to the analysis.
  no-raw-socket     The BSD socket API (the <sys/socket.h> family of headers
                    and ::socket / ::connect / ::recv / ... syscalls) is
                    forbidden outside src/net/socket.cc: all byte transport
                    goes through the deadline-aware net::Socket wrappers
                    (src/net/socket.h) so every read/write path gets
                    deadlines, clean Unavailable mapping, fault points, and
                    the drain path's cross-thread shutdown (DESIGN.md "Query
                    service"). An ad-hoc socket can block forever and is
                    invisible to graceful drain.
  cache-obs         Cache machinery files (CACHE_OBS_FILES: the sharded LRU
                    and its clients in src/cache/) must reference the
                    observability layer: a cache whose hits/misses/evictions
                    never reach obs::MetricsRegistry cannot be sized or
                    debugged in production (CONTRIBUTING.md ground rule). New
                    cache clients belong on the list. File-scoped: suppress
                    with `// htl-lint: allow(cache-obs)` anywhere in the file.
  net-wide-event    Server request-path files (NET_WIDE_EVENT_FILES:
                    src/net/server.cc) must land every request in the
                    wide-event query log (RecordWideEvent / query_log_) and
                    observe the request latency histogram: a server path that
                    skips the wide event is invisible to the slowlog and to
                    tools/htlstat.py (CONTRIBUTING.md ground rule). New server
                    request paths belong on the list. File-scoped: suppress
                    with `// htl-lint: allow(net-wide-event)` anywhere in the
                    file.
  vm-opcode-coverage
                    Every OpCode enumerator in src/vm/bytecode.h must appear
                    in the compiler (src/vm/compiler.cc), the VM dispatch loop
                    (src/vm/vm.cc), and the disassembler (src/vm/disasm.cc):
                    an opcode that one of the three surfaces cannot emit,
                    execute, or print is a silent partial operator — it
                    compiles today and fails at query time (CONTRIBUTING.md
                    ground rule). Repo-level and not suppressible: handle the
                    opcode in all three files.
  prune-differential
                    While the bound derivation (src/htl/bound.h) exists, its
                    proof obligations must exist with it: the differential
                    battery (tests/property/prune_differential_test.cc) and
                    the soundness property test
                    (tests/property/bound_soundness_test.cc), each still
                    referencing the load-bearing symbols (UpperBoundFraction,
                    VideoStats, videos_pruned, ...). The symbol list is
                    drift-checked against the declaring headers, and any src/
                    file referencing UpperBoundFraction outside the known
                    pruning surfaces is a finding: a new caller is a new
                    pruning decision and belongs in the battery
                    (CONTRIBUTING.md ground rule). Repo-level and not
                    suppressible.
  stale-suppression `// htl-lint: allow(<rule>)` comments that no longer
                    suppress anything (the rule never fires there, is unknown,
                    or is not in scope for the file) are findings themselves:
                    a stale allow is how the next real violation sneaks in
                    under an old waiver. Fix by deleting the comment. This
                    meta-rule cannot itself be suppressed.

A finding can be locally suppressed with `// htl-lint: allow(<rule>)` on the
same line. Exit status is 0 when clean, 1 when any finding is reported.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

HEADER_EXTS = {".h"}
SOURCE_EXTS = {".h", ".cc", ".cpp"}

ALLOW_RE = re.compile(r"//\s*htl-lint:\s*allow\(([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)\)")

# Every rule the linter can emit (stale-suppression is the meta-rule).
ALL_RULES = {
    "no-exceptions",
    "no-using-namespace-in-header",
    "header-guard",
    "include-order",
    "no-void-status-discard",
    "no-throwing-parse",
    "exec-context-polling",
    "no-bare-timer",
    "obs-operator-span",
    "no-raw-thread",
    "no-raw-mutex",
    "no-raw-socket",
    "cache-obs",
    "net-wide-event",
    "vm-opcode-coverage",
    "prune-differential",
    "stale-suppression",
}

# The portable subset applied outside src/ (bench/, examples/): rules about
# runtime behavior that hold anywhere, not src/ layout conventions.
AUX_RULES = {
    "no-exceptions",
    "no-throwing-parse",
    "no-raw-thread",
    "no-raw-mutex",
    "no-raw-socket",
    "stale-suppression",
}


def strip_comments_and_strings(text: str) -> str:
    """Replaces comment/string-literal contents with spaces, keeping offsets.

    Newlines are preserved so line numbers survive. String and char literals
    become `""` / `''`; comments become whitespace.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c == '"' or c == "'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * max(0, j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        try:
            rel = self.path.relative_to(REPO_ROOT)
        except ValueError:
            rel = self.path
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",")}


class FileLint:
    """One file's lint pass: enabled-rule scoping, findings, and the record
    of which allow() suppressions actually fired (for stale detection)."""

    def __init__(self, path: Path, raw_lines: list[str], enabled: set[str]):
        self.path = path
        self.raw_lines = raw_lines
        self.enabled = enabled
        self.findings: list[Finding] = []
        # (lineno, rule) pairs whose allow() suppressed a real would-be
        # finding; everything mentioned but absent here is stale.
        self.used_allows: set[tuple[int, str]] = set()

    def hit(self, lineno: int, rule: str, message: str) -> None:
        """Reports a would-be finding at `lineno`, honoring a same-line
        allow(). No-op when the rule is out of scope for this file."""
        if rule not in self.enabled:
            return
        if rule in allowed_rules(self.raw_lines[lineno - 1]):
            self.used_allows.add((lineno, rule))
        else:
            self.findings.append(Finding(self.path, lineno, rule, message))

    def hit_file_scoped(self, rule: str, message: str) -> None:
        """Reports a would-be file-scoped finding, honoring an allow()
        anywhere in the file (all mentions of the rule count as used)."""
        if rule not in self.enabled:
            return
        mentions = [idx + 1 for idx, l in enumerate(self.raw_lines)
                    if rule in allowed_rules(l)]
        if mentions:
            self.used_allows.update((m, rule) for m in mentions)
        else:
            self.findings.append(Finding(self.path, 1, rule, message))


EXCEPTION_RE = re.compile(r"(?<![\w])(?:throw|try|catch)(?![\w])")
USING_NAMESPACE_RE = re.compile(r"\busing\s+namespace\b")
VOID_DISCARD_RE = re.compile(r"\(\s*void\s*\)\s*[A-Za-z_][\w:.\->]*\s*\(")
THROWING_PARSE_RE = re.compile(r"\bstd\s*::\s*sto(?:i|l|ll|ul|ull|f|d|ld)\b")
RAW_THREAD_RE = re.compile(r"\bstd\s*::\s*(?:jthread|thread)\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd\s*::\s*(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock)\b")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(<[^>]+>|"[^"]+")')

# The one sanctioned home for raw threads: the pool's own implementation.
RAW_THREAD_EXEMPT = {
    "src/util/thread_pool.h",
    "src/util/thread_pool.cc",
}

# The one sanctioned home for raw std synchronization: the annotated wrapper
# itself (htl::Mutex / htl::CondVar are built on std::mutex /
# std::condition_variable — that is the point).
RAW_MUTEX_EXEMPT = {
    "src/util/mutex.h",
}

# Socket-API headers (matched on the raw line — include paths inside quotes
# are blanked by strip_comments_and_strings, but these are all <...>).
RAW_SOCKET_INCLUDE_RE = re.compile(
    r"#\s*include\s+<(?:sys/socket\.h|sys/un\.h|netinet/[^>]+|arpa/inet\.h|"
    r"netdb\.h|poll\.h|sys/epoll\.h)>")
# Globally-qualified socket syscalls. The lookbehind keeps `std::bind` /
# `absl::socket`-style qualified names from matching: only a leading `::`
# (start of token) counts as the global namespace.
RAW_SOCKET_CALL_RE = re.compile(
    r"(?<![\w)])::\s*(?:socket|connect|accept4?|bind|listen|recv|recvfrom|"
    r"send|sendto|sendmsg|recvmsg|poll|epoll_\w+|setsockopt|getsockopt|"
    r"getsockname|getpeername|inet_pton|inet_ntop)\s*\(")

# The one sanctioned home for the raw socket API: the deadline-aware
# net::Socket wrapper implementation.
RAW_SOCKET_EXEMPT = {
    "src/net/socket.cc",
}


def rel_posix(path: Path) -> str | None:
    try:
        return path.relative_to(REPO_ROOT).as_posix()
    except ValueError:
        return None


def expected_guard(path: Path) -> str:
    rel = path.relative_to(REPO_ROOT / "src")
    token = re.sub(r"[^A-Za-z0-9]", "_", str(rel).upper())
    return f"HTL_{token}_"


def check_line_rules(lint: FileLint, code_lines: list[str]) -> None:
    path = lint.path
    rel = rel_posix(path)
    is_header = path.suffix in HEADER_EXTS
    for idx, code in enumerate(code_lines):
        lineno = idx + 1

        if EXCEPTION_RE.search(code):
            lint.hit(lineno, "no-exceptions",
                     "throw/try/catch is forbidden; return htl::Status instead")
        if is_header and USING_NAMESPACE_RE.search(code):
            lint.hit(lineno, "no-using-namespace-in-header",
                     "`using namespace` in a header pollutes every includer")
        if VOID_DISCARD_RE.search(code):
            lint.hit(lineno, "no-void-status-discard",
                     "discarding a call with (void) defeats [[nodiscard]]; "
                     "use .IgnoreError() or handle the result")
        if THROWING_PARSE_RE.search(code):
            lint.hit(lineno, "no-throwing-parse",
                     "std::sto* throws on overflow; use htl::Parse* (util/parse.h)")
        if RAW_THREAD_RE.search(code) and rel not in RAW_THREAD_EXEMPT:
            lint.hit(lineno, "no-raw-thread",
                     "raw std::thread/std::jthread is forbidden outside "
                     "src/util/thread_pool; run work on the shared ThreadPool "
                     "(ParallelFor / Schedule) so it gets the bounded queue, "
                     "cancellation fan-out, and TSan coverage")
        if RAW_MUTEX_RE.search(code) and rel not in RAW_MUTEX_EXEMPT:
            lint.hit(lineno, "no-raw-mutex",
                     "raw std synchronization is forbidden outside "
                     "src/util/mutex.h; use htl::Mutex / htl::MutexLock / "
                     "htl::CondVar (util/mutex.h) so Clang Thread Safety "
                     "Analysis can prove the lock discipline (DESIGN.md "
                     "\"Lock discipline\")")
        if rel not in RAW_SOCKET_EXEMPT and (
                RAW_SOCKET_CALL_RE.search(code) or
                RAW_SOCKET_INCLUDE_RE.search(lint.raw_lines[idx])):
            lint.hit(lineno, "no-raw-socket",
                     "the raw socket API is forbidden outside "
                     "src/net/socket.cc; use the deadline-aware net::Socket "
                     "wrappers (net/socket.h) so every transport path gets "
                     "deadlines, fault points, and drain-safe shutdown "
                     "(DESIGN.md \"Query service\")")


def check_header_guard(lint: FileLint) -> None:
    if "header-guard" not in lint.enabled:
        return
    path, raw_lines = lint.path, lint.raw_lines
    guard = expected_guard(path)
    text_lines = [l.strip() for l in raw_lines]
    try:
        ifndef_idx = next(i for i, l in enumerate(text_lines) if l.startswith("#ifndef"))
    except StopIteration:
        lint.findings.append(Finding(path, 1, "header-guard",
                                     f"missing header guard (expected {guard})"))
        return
    if text_lines[ifndef_idx] != f"#ifndef {guard}":
        lint.findings.append(Finding(path, ifndef_idx + 1, "header-guard",
                                     f"guard should be {guard}"))
        return
    if ifndef_idx + 1 >= len(text_lines) or \
            text_lines[ifndef_idx + 1] != f"#define {guard}":
        lint.findings.append(Finding(path, ifndef_idx + 2, "header-guard",
                                     f"#define {guard} must follow the #ifndef"))
    last_nonempty = next((l for l in reversed(text_lines) if l), "")
    if last_nonempty != f"#endif  // {guard}":
        lint.findings.append(Finding(path, len(text_lines), "header-guard",
                                     f"file must end with `#endif  // {guard}`"))


def check_include_order(lint: FileLint) -> None:
    if "include-order" not in lint.enabled:
        return
    path, raw_lines = lint.path, lint.raw_lines
    includes = []  # (lineno, token) with token like <x> or "y"
    for idx, line in enumerate(raw_lines):
        m = INCLUDE_RE.match(line)
        if m:
            includes.append((idx + 1, m.group(1)))
    if not includes:
        return

    start = 0
    if path.suffix != ".h":
        own = f'"{path.parent.name}/{path.stem}.h"'
        if (REPO_ROOT / "src" / path.parent.name / f"{path.stem}.h").exists():
            first_line, first_tok = includes[0]
            if first_tok == own:
                start = 1
            else:
                lint.findings.append(Finding(
                    path, first_line, "include-order",
                    f"first include of a .cc must be its own header {own}"))

    # Blocks are maximal runs of includes on consecutive lines.
    blocks: list[list[tuple[int, str]]] = []
    for lineno, tok in includes[start:]:
        if blocks and lineno == blocks[-1][-1][0] + 1:
            blocks[-1].append((lineno, tok))
        else:
            blocks.append([(lineno, tok)])

    seen_project_block = False
    for block in blocks:
        kinds = {tok[0] for _, tok in block}
        if kinds == {"<"}:
            if seen_project_block:
                lint.hit(block[0][0], "include-order",
                         "<system> include block after a \"project\" block")
        elif kinds == {'"'}:
            seen_project_block = True
        else:
            lint.findings.append(Finding(
                path, block[0][0], "include-order",
                "mixed <system> and \"project\" includes in one block"))
        toks = [tok for _, tok in block]
        if toks != sorted(toks):
            lint.findings.append(Finding(
                path, block[0][0], "include-order",
                "includes within a block must be sorted alphabetically"))


BARE_TIMER_RE = re.compile(r"\bWallTimer\b|#\s*include\s+\"util/timer\.h\"")


def is_kernel_path(path: Path) -> bool:
    rel = rel_posix(path)
    return rel is not None and (rel.startswith("src/sim/") or
                                rel.startswith("src/engine/"))


def check_no_bare_timer(lint: FileLint, code_lines: list[str]) -> None:
    if not is_kernel_path(lint.path):
        return
    for idx, code in enumerate(code_lines):
        # The include is stripped to whitespace in `code`; test the raw line
        # for it and the code line for the identifier.
        if BARE_TIMER_RE.search(code) or BARE_TIMER_RE.search(lint.raw_lines[idx]):
            lint.hit(idx + 1, "no-bare-timer",
                     "hot-path kernels must not time work with a bare WallTimer; "
                     "use HTL_OBS_SPAN / TraceSpan (src/obs/trace.h) so the timing "
                     "lands in the EXPLAIN profile")


# The designated hot-path kernel files: the operator kernels, the engines'
# evaluators, and the SQL executor. New kernel files belong on this list
# (CONTRIBUTING.md ground rule).
OBS_KERNEL_FILES = {
    "src/engine/direct_engine.cc",
    "src/engine/retrieval.cc",
    "src/sim/list_ops.cc",
    "src/sim/table_ops.cc",
    "src/sql/executor.cc",
}
OBS_REF_RE = re.compile(r"\b(?:HTL_OBS_SPAN|HTL_OBS_COUNT|TraceSpan)\b|\bobs\s*::")


def check_obs_operator_span(lint: FileLint, code: str) -> None:
    if rel_posix(lint.path) not in OBS_KERNEL_FILES:
        return
    if not OBS_REF_RE.search(code):
        lint.hit_file_scoped(
            "obs-operator-span",
            "hot-path kernel file never references the observability layer; "
            "operators must count (HTL_OBS_COUNT) and trace (HTL_OBS_SPAN) "
            "their work, see CONTRIBUTING.md")


# The cache substrate and every cache client: each must feed the metrics
# registry (hit/miss/fill/eviction counters) so deployed caches are
# observable. New cache clients belong on this list (CONTRIBUTING.md).
CACHE_OBS_FILES = {
    "src/cache/sharded_cache.h",
    "src/cache/sim_list_cache.cc",
}


def check_cache_obs(lint: FileLint, code: str) -> None:
    if rel_posix(lint.path) not in CACHE_OBS_FILES:
        return
    if not OBS_REF_RE.search(code):
        lint.hit_file_scoped(
            "cache-obs",
            "cache machinery never references the observability layer; "
            "hit/miss/fill/eviction counters must reach obs::MetricsRegistry, "
            "see CONTRIBUTING.md")


# Server request-path files: every request must land one wide event in the
# query log and one latency observation, whatever its outcome — the slowlog
# and tools/htlstat.py are blind to paths that skip it. New server request
# paths belong on this list (CONTRIBUTING.md ground rule).
NET_WIDE_EVENT_FILES = {
    "src/net/server.cc",
}
WIDE_EVENT_REF_RE = re.compile(r"\bRecordWideEvent\b")
QUERY_LOG_REF_RE = re.compile(r"\bquery_log_\b")
LATENCY_OBS_RE = re.compile(r"\blatency_us_\s*->\s*Observe\b")


def check_net_wide_event(lint: FileLint, code: str) -> None:
    if rel_posix(lint.path) not in NET_WIDE_EVENT_FILES:
        return
    missing = []
    if not WIDE_EVENT_REF_RE.search(code):
        missing.append("RecordWideEvent")
    if not QUERY_LOG_REF_RE.search(code):
        missing.append("query_log_")
    if not LATENCY_OBS_RE.search(code):
        missing.append("latency_us_->Observe")
    if missing:
        lint.hit_file_scoped(
            "net-wide-event",
            "server request path no longer lands wide events ("
            + ", ".join(missing) + " missing); every request must record "
            "into the query log and the latency histogram, see CONTRIBUTING.md")


LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
EXEC_REF_RE = re.compile(
    r"\b(?:ExecContext|DepthScope|HTL_CHECK_EXEC|ChargeRows|ChargeTable|exec_)\b")


def is_engine_loop_file(path: Path) -> bool:
    if path.suffix != ".cc":
        return False
    rel = rel_posix(path)
    return rel is not None and (rel.startswith("src/engine/") or
                                rel == "src/sql/executor.cc")


def check_exec_context_polling(lint: FileLint, code: str) -> None:
    if not is_engine_loop_file(lint.path):
        return
    if LOOP_RE.search(code) and not EXEC_REF_RE.search(code):
        lint.hit_file_scoped(
            "exec-context-polling",
            "engine-loop file never references the execution context; loops "
            "over segments/rows must poll it (HTL_CHECK_EXEC / ChargeRows), "
            "see CONTRIBUTING.md")


# The three surfaces every bytecode operation must cover: emission,
# execution, and the human-readable listing. A new opcode missing from any
# one of them is a silent partial operator (CONTRIBUTING.md ground rule).
VM_BYTECODE_HEADER = "src/vm/bytecode.h"
VM_OPCODE_SURFACES = (
    "src/vm/compiler.cc",
    "src/vm/vm.cc",
    "src/vm/disasm.cc",
)
OPCODE_ENUM_RE = re.compile(r"enum\s+class\s+OpCode[^{]*\{(.*?)\}", re.DOTALL)
OPCODE_ENUMERATOR_RE = re.compile(r"^\s*(k\w+)\s*[,=]", re.MULTILINE)


def check_vm_opcode_coverage() -> list[Finding]:
    """Repo-level rule: every OpCode enumerator must appear in the compiler,
    the VM dispatch loop, and the disassembler. Not suppressible."""
    header = REPO_ROOT / VM_BYTECODE_HEADER
    if not header.exists():
        return []
    header_raw = header.read_text(encoding="utf-8")
    enum_m = OPCODE_ENUM_RE.search(strip_comments_and_strings(header_raw))
    if not enum_m:
        return [Finding(header, 1, "vm-opcode-coverage",
                        "could not find `enum class OpCode` in the bytecode "
                        "header; update tools/lint.py if it moved")]
    opcodes = OPCODE_ENUMERATOR_RE.findall(enum_m.group(1))
    if not opcodes:
        return [Finding(header, 1, "vm-opcode-coverage",
                        "OpCode enum has no enumerators the linter can parse")]

    findings: list[Finding] = []
    header_lines = header_raw.splitlines()
    for rel in VM_OPCODE_SURFACES:
        surface = REPO_ROOT / rel
        if not surface.exists():
            findings.append(Finding(header, 1, "vm-opcode-coverage",
                                    f"opcode surface {rel} is missing"))
            continue
        code = strip_comments_and_strings(surface.read_text(encoding="utf-8"))
        for op in opcodes:
            if re.search(rf"\b{re.escape(op)}\b", code):
                continue
            lineno = next((i + 1 for i, l in enumerate(header_lines)
                           if re.match(rf"\s*{re.escape(op)}\s*[,=]", l)), 1)
            findings.append(Finding(
                header, lineno, "vm-opcode-coverage",
                f"OpCode::{op} is never referenced in {rel}; every opcode "
                "must be handled by the compiler, the VM dispatch loop, and "
                "the disassembler (no silent partial ops)"))
    return findings


# Bound-based pruning's proof obligations (CONTRIBUTING.md ground rule):
# while the bound derivation exists, the differential battery and the
# soundness property test must exist with it, each still exercising the
# load-bearing symbols. Each symbol is drift-checked against its declaring
# header first, so a rename fails loudly here instead of letting the rule
# rot into a vacuous pass.
PRUNE_BOUND_HEADER = "src/htl/bound.h"
# symbol -> (declaring file, proof file that must reference it).
PRUNE_SYMBOLS = {
    "UpperBoundFraction": ("src/htl/bound.h",
                           "tests/property/bound_soundness_test.cc"),
    "kBoundSlack": ("src/htl/bound.h",
                    "tests/property/bound_soundness_test.cc"),
    "VideoStats": ("src/model/video_stats.h",
                   "tests/property/bound_soundness_test.cc"),
    "videos_pruned": ("src/engine/retrieval.h",
                      "tests/property/prune_differential_test.cc"),
    "pruned_videos": ("src/engine/retrieval.h",
                      "tests/property/prune_differential_test.cc"),
    "prune": ("src/engine/query_options.h",
              "tests/property/prune_differential_test.cc"),
    "num_shards": ("src/engine/query_options.h",
                   "tests/property/prune_differential_test.cc"),
}
# Every src/ file allowed to reference the bound derivation. A new caller is
# a new pruning decision: add it here AND cover it in the battery.
PRUNE_KNOWN_SURFACES = {
    "src/htl/bound.h",
    "src/htl/bound.cc",
    "src/engine/retrieval.cc",
}


def check_prune_differential() -> list[Finding]:
    """Repo-level rule: the pruning proof files exist and still exercise the
    load-bearing symbols; no pruning surface outside the known set. Not
    suppressible."""
    header = REPO_ROOT / PRUNE_BOUND_HEADER
    if not header.exists():
        return []
    findings: list[Finding] = []

    proof_files = sorted({proof for _, proof in PRUNE_SYMBOLS.values()})
    proof_code: dict[str, str] = {}
    for rel in proof_files:
        path = REPO_ROOT / rel
        if not path.exists():
            findings.append(Finding(
                header, 1, "prune-differential",
                f"pruning proof file {rel} is missing; the bound derivation "
                "ships only with its differential battery and soundness test "
                "(CONTRIBUTING.md)"))
            continue
        proof_code[rel] = strip_comments_and_strings(
            path.read_text(encoding="utf-8"))

    for symbol, (declaring, proof) in sorted(PRUNE_SYMBOLS.items()):
        decl_path = REPO_ROOT / declaring
        pattern = rf"\b{re.escape(symbol)}\b"
        if not decl_path.exists() or not re.search(
                pattern,
                strip_comments_and_strings(decl_path.read_text(encoding="utf-8"))):
            findings.append(Finding(
                header, 1, "prune-differential",
                f"symbol {symbol} no longer appears in {declaring}; the "
                "prune-differential symbol list in tools/lint.py has drifted "
                "— update it alongside the rename"))
            continue
        if proof in proof_code and not re.search(pattern, proof_code[proof]):
            findings.append(Finding(
                header, 1, "prune-differential",
                f"{proof} never references {symbol}; the proof file has "
                "stopped exercising the pruning surface it exists for"))

    surface_re = re.compile(r"\bUpperBoundFraction\b")
    for path in sorted((REPO_ROOT / "src").rglob("*")):
        if path.suffix not in SOURCE_EXTS:
            continue
        rel = rel_posix(path)
        if rel in PRUNE_KNOWN_SURFACES:
            continue
        code = strip_comments_and_strings(path.read_text(encoding="utf-8"))
        if surface_re.search(code):
            findings.append(Finding(
                path, 1, "prune-differential",
                "new caller of UpperBoundFraction outside the known pruning "
                "surfaces; every pruning decision must be covered by the "
                "differential battery — add the file to PRUNE_KNOWN_SURFACES "
                "in tools/lint.py and extend the battery"))
    return findings


def check_stale_suppressions(lint: FileLint) -> None:
    """Every allow() mention must have suppressed a real would-be finding in
    this run; the rest are stale waivers (or typos) and get reported."""
    if "stale-suppression" not in lint.enabled:
        return
    for idx, raw in enumerate(lint.raw_lines):
        for rule in sorted(allowed_rules(raw)):
            lineno = idx + 1
            if rule not in ALL_RULES:
                lint.findings.append(Finding(
                    lint.path, lineno, "stale-suppression",
                    f"allow({rule}) names an unknown rule (typo?); "
                    "known rules are listed in tools/lint.py"))
            elif rule == "stale-suppression":
                lint.findings.append(Finding(
                    lint.path, lineno, "stale-suppression",
                    "allow(stale-suppression) is not suppressible; "
                    "delete the stale comment instead"))
            elif (lineno, rule) not in lint.used_allows:
                lint.findings.append(Finding(
                    lint.path, lineno, "stale-suppression",
                    f"allow({rule}) suppresses nothing here "
                    "(the rule no longer fires on this line, or is out of "
                    "scope for this file); delete the comment"))


def rules_for(path: Path) -> set[str]:
    """src/ gets the full set; bench/, examples/, and anything else gets the
    portable subset (see module docstring)."""
    rel = rel_posix(path)
    if rel is not None and rel.startswith("src/"):
        return ALL_RULES
    return AUX_RULES


def lint_file(path: Path) -> list[Finding]:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    code = strip_comments_and_strings(raw)
    code_lines = code.splitlines()
    lint = FileLint(path, raw_lines, rules_for(path))
    check_line_rules(lint, code_lines)
    if path.suffix in HEADER_EXTS:
        check_header_guard(lint)
    check_include_order(lint)
    check_exec_context_polling(lint, code)
    check_no_bare_timer(lint, code_lines)
    check_obs_operator_span(lint, code)
    check_cache_obs(lint, code)
    check_net_wide_event(lint, code)
    check_stale_suppressions(lint)
    return lint.findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/ bench/ examples/)")
    args = parser.parse_args(argv)

    roots = args.paths or [REPO_ROOT / "src", REPO_ROOT / "bench",
                           REPO_ROOT / "examples"]
    files: list[Path] = []
    for root in roots:
        root = root.resolve()
        if root.is_dir():
            files.extend(sorted(p for p in root.rglob("*")
                                if p.suffix in SOURCE_EXTS))
        elif root.suffix in SOURCE_EXTS:
            files.append(root)

    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))
    findings.extend(check_vm_opcode_coverage())
    findings.extend(check_prune_differential())

    for finding in findings:
        print(finding)
    print(f"lint.py: {len(files)} files checked, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
